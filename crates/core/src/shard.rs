//! Sharded multi-process corpus verification.
//!
//! The paper's acceptability proofs decompose into independent per-program
//! obligations (one staged `⊢o`/`⊢i`/`⊢r` check each), so a corpus is
//! embarrassingly parallel beyond one process. This module is the
//! process-level execution layer behind
//! [`CorpusPolicy::Sharded`](crate::api::CorpusPolicy::Sharded): a
//! **coordinator** (the `ShardPool` driving this module's
//! `run_corpus_sharded`) that distributes programs across N
//! **worker processes** (the `relaxed-shardd` binary, whose entire logic
//! is [`worker_main`] in this module) and merges their results into the
//! same deterministic [`CorpusReport`] an in-process
//! [`Verifier::check_corpus`] run produces.
//!
//! # Protocol
//!
//! Frames are newline-delimited JSON objects — the same hand-rolled,
//! dependency-free conventions as the [`crate::cache`] store (whose
//! reader this module reuses). One frame per line; JSON string escaping
//! guarantees a frame never spans lines. The framing is
//! transport-agnostic: the coordinator speaks it over child-process
//! stdio pipes here, and the networked service layer ([`crate::service`])
//! speaks the identical frames over TCP, both behind this module's
//! `Transport` trait.
//!
//! ```text
//! coordinator → worker        worker → coordinator
//! ---------------------       ---------------------
//! {"type":"config",...}       {"type":"ready","proto":1}
//! {"type":"job","id":0,...}   {"type":"result","id":0,...}
//! {"type":"job","id":3,...}   {"type":"result","id":3,...}
//! <EOF>                       (final incremental persist, exit 0)
//! ```
//!
//! The `config` frame carries the session's typed configuration (solver
//! budgets, stage selection, per-worker thread budget, cache path and
//! cap); each `job` frame carries one serialized program + spec (the
//! pretty-printed source, which round-trips through the parser); each
//! `result` frame carries the per-stage verdict lists, per-job engine and
//! solver statistics, and wall time. The coordinator re-generates the VCs
//! locally (generation is deterministic and cheap — solving is the
//! expensive part) and zips them with the returned verdicts, so the
//! merged report is structurally identical to an in-process run's.
//!
//! # Work units: goal batches
//!
//! The unit of distribution is a **goal batch**, not a whole program.
//! Under [`Config::goal_shards`] > 1 each program's concatenated
//! obligation list (every selected stage, pipeline order) is split into
//! up to that many balanced contiguous batches, each shipped as its own
//! job frame (`"batch":k,"batches":n`); the worker re-generates the
//! stage VCs (generation is deterministic and cheap), computes the same
//! split, and discharges only its slice. The coordinator merges the
//! batch partials back into one per-program entry, so a corpus of one
//! huge program still saturates the whole fleet. The default
//! (`goal_shards = 1`) keeps whole-program jobs, and a frame without
//! batch fields means `batches = 1` — older coordinators and workers
//! interoperate unchanged.
//!
//! # Scheduling and fault tolerance
//!
//! Jobs are distributed by **work-stealing**: a shared queue ordered
//! longest-first that idle workers pull from, so one slow program cannot
//! serialize the tail of the corpus. "Longest" is *measured* when
//! possible: once the session's observed-cost history (per-program
//! `elapsed_ms` from earlier [`CorpusReport`]s, see
//! [`Verifier::observe_costs`](crate::api::Verifier::observe_costs))
//! covers every scheduled program, jobs are ordered by observed
//! milliseconds (divided across a program's batches) instead of the
//! VC-count estimate. A worker crash, a malformed response frame, or a
//! response timeout kills that worker and requeues the job onto a
//! freshly spawned replacement worker (a new process, so accumulated
//! worker state can never fail the same job twice); after
//! [`MAX_ATTEMPTS`] failed attempts the job is recorded as a per-program
//! [`CorpusError::Shard`] — never a lost program, never a hung
//! coordinator.
//!
//! [`Config::goal_shards`]: crate::api::Config::goal_shards
//!
//! # Cache-mediated verdict sharing
//!
//! Under [`CachePolicy::Persistent`]
//! every worker opens the same fingerprint-gated verdict store: it
//! refreshes from disk before each job (picking up verdicts sibling
//! workers published, counted as [`EngineStats::disk_hits`]; a cheap
//! `stat` guard skips unchanged files) and **appends** its fresh verdicts
//! after each job
//! ([`DischargeEngine::append_pending`](crate::engine::DischargeEngine::append_pending))
//! — appends never rewrite the file, so one worker's flush can never drop
//! a sibling's concurrently published entries. The coordinator refreshes
//! its own session cache after the run, so subsequent in-process checks
//! start warm.
//!
//! [`Verifier::check_corpus`]: crate::api::Verifier::check_corpus
//! [`CorpusReport`]: crate::api::CorpusReport
//! [`CorpusError::Shard`]: crate::api::CorpusError::Shard
//! [`EngineStats::disk_hits`]: crate::engine::EngineStats::disk_hits

use crate::api::{
    elapsed_ms_since, CachePolicy, Config, CorpusEntry, CorpusError, CorpusReport, Stage, StageSet,
    Verifier,
};
use crate::cache::{get, json_string, parse_json, parse_verdict, render_verdict, Json};
use crate::engine::EngineStats;
use crate::vcgen::Vc;
use crate::verify::{stage_vcs, AcceptabilityReport, Report, Spec, VcResult};
use relaxed_lang::{parse_formula, parse_program, parse_rel_formula, Program};
use relaxed_smt::sat::SatStats;
use relaxed_smt::{SolverStats, Validity};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Version of the coordinator/worker wire protocol. The worker echoes it
/// in its `ready` frame; a mismatch fails the handshake (and the job is
/// retried elsewhere, ultimately surfacing as a per-program error rather
/// than silently mixing protocol revisions).
pub const PROTOCOL_VERSION: u32 = 1;

/// File name of the worker binary (`relaxed-shardd`, plus the platform
/// executable suffix), used by [`locate_worker`].
pub const WORKER_BINARY: &str = "relaxed-shardd";

/// File name of the service daemon binary (`relaxed-serviced`, plus the
/// platform executable suffix), used by [`locate_service`]. See
/// [`crate::service`].
pub const SERVICE_BINARY: &str = "relaxed-serviced";

/// Attempts a job may consume before it is recorded as a per-program
/// error: the first run plus two retries on other workers.
pub const MAX_ATTEMPTS: u32 = 3;

// ---------------------------------------------------------------------
// Worker-binary discovery
// ---------------------------------------------------------------------

/// Probes every ancestor directory of `std::env::current_exe()` for
/// `name` (plus the platform executable suffix). Finds Cargo's
/// `target/<profile>/<name>` from test binaries (`…/deps/…`), examples
/// (`…/examples/…`), and sibling binaries alike. `Err` carries the full
/// list of probed candidate paths, for actionable discovery-failure
/// diagnostics.
pub(crate) fn locate_binary(name: &str) -> Result<PathBuf, Vec<PathBuf>> {
    let mut searched = Vec::new();
    let Ok(exe) = std::env::current_exe() else {
        return Err(searched);
    };
    let file = format!("{name}{}", std::env::consts::EXE_SUFFIX);
    for dir in exe.ancestors().skip(1) {
        let candidate = dir.join(&file);
        if candidate.is_file() {
            return Ok(candidate);
        }
        searched.push(candidate);
    }
    Err(searched)
}

/// Locates the `relaxed-shardd` worker binary by walking the ancestor
/// directories of the current executable. Explicit configuration
/// (`Verifier::builder().shard_worker(..)` or the `RELAXED_SHARDD`
/// environment knob under the env layer) takes precedence over discovery
/// and is handled by the caller.
pub fn locate_worker() -> Option<PathBuf> {
    locate_binary(WORKER_BINARY).ok()
}

/// Locates the `relaxed-serviced` daemon binary next to the current
/// executable — the service-side analogue of
/// [`locate_worker`], used by benches and `paper_report` to start a
/// daemon without a hardcoded path.
pub fn locate_service() -> Option<PathBuf> {
    locate_binary(SERVICE_BINARY).ok()
}

fn render_searched(searched: &[PathBuf]) -> String {
    if searched.is_empty() {
        "(no current-executable path to search from)".to_string()
    } else {
        searched
            .iter()
            .map(|p| p.display().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

pub(crate) fn resolve_worker(config: &Config) -> Result<PathBuf, String> {
    if let Some(path) = &config.shard_worker {
        return Ok(path.clone());
    }
    locate_binary(WORKER_BINARY).map_err(|searched| {
        format!(
            "{WORKER_BINARY} worker binary not found near the current executable \
             (searched: {}); build it (`cargo build -p relaxed-bench`), set \
             RELAXED_SHARDD, or use `Verifier::builder().shard_worker(..)`",
            render_searched(&searched)
        )
    })
}

// ---------------------------------------------------------------------
// Frame rendering (shared by both sides)
// ---------------------------------------------------------------------

fn render_stages(stages: StageSet) -> String {
    let mut names = Vec::new();
    for stage in [Stage::Original, Stage::Intermediate, Stage::Relaxed] {
        if stages.contains(stage) {
            names.push(stage_name(stage));
        }
    }
    names.join(",")
}

fn parse_stages(text: &str) -> Result<StageSet, String> {
    let mut stages = StageSet::none();
    for name in text.split(',').filter(|s| !s.is_empty()) {
        stages = stages.with(stage_by_name(name)?);
    }
    Ok(stages)
}

fn stage_name(stage: Stage) -> &'static str {
    match stage {
        Stage::Original => "original",
        Stage::Intermediate => "intermediate",
        Stage::Relaxed => "relaxed",
    }
}

fn stage_by_name(name: &str) -> Result<Stage, String> {
    match name {
        "original" => Ok(Stage::Original),
        "intermediate" => Ok(Stage::Intermediate),
        "relaxed" => Ok(Stage::Relaxed),
        other => Err(format!("unknown stage {other:?}")),
    }
}

pub(crate) fn render_config_frame(config: &Config, per_worker: usize) -> String {
    let cache = match &config.cache {
        CachePolicy::Persistent { path } => path.display().to_string(),
        CachePolicy::Shared | CachePolicy::PerProgram => String::new(),
    };
    let per_program = u8::from(matches!(config.cache, CachePolicy::PerProgram));
    let incremental = u8::from(config.incremental);
    let prefilter = u8::from(config.prefilter);
    // Coordinator-side tracing travels with the session: workers capture
    // spans in memory and ship them back inside result frames.
    let trace = u8::from(crate::telemetry::enabled());
    format!(
        "{{\"type\":\"config\",\"proto\":{PROTOCOL_VERSION},\"max_conflicts\":{},\
         \"branch_budget\":{},\"incremental\":{incremental},\"prefilter\":{prefilter},\
         \"workers\":{per_worker},\"trace\":{trace},\
         \"stages\":{},\"cache\":{},\
         \"cache_max\":{},\"per_program\":{per_program}}}",
        config.max_conflicts,
        config.branch_budget,
        json_string(&render_stages(config.stages)),
        json_string(&cache),
        config.cache_max,
    )
}

fn render_job_frame(
    id: usize,
    name: &str,
    program: &Program,
    spec: &Spec,
    batch: usize,
    batches: usize,
) -> String {
    format!(
        "{{\"type\":\"job\",\"id\":{id},\"name\":{},\"batch\":{batch},\"batches\":{batches},\
         \"program\":{},\"pre\":{},\
         \"post\":{},\"rel_pre\":{},\"rel_post\":{}}}",
        json_string(name),
        json_string(&program.to_string()),
        json_string(&spec.pre.to_string()),
        json_string(&spec.post.to_string()),
        json_string(&spec.rel_pre.to_string()),
        json_string(&spec.rel_post.to_string()),
    )
}

fn render_solver_stats(out: &mut String, stats: &SolverStats) {
    out.push_str(&format!(
        "{{\"queries\":{},\"pivots\":{},\"branch_nodes\":{},\"atoms\":{},\"max_atoms\":{},\
         \"decisions\":{},\"conflicts\":{},\"propagations\":{},\"restarts\":{},\
         \"theory_checks\":{}}}",
        stats.queries,
        stats.pivots,
        stats.branch_nodes,
        stats.atoms,
        stats.max_atoms,
        stats.sat.decisions,
        stats.sat.conflicts,
        stats.sat.propagations,
        stats.sat.restarts,
        stats.sat.theory_checks,
    ));
}

/// Span budget per result frame: a worker ships at most this many spans
/// back, so a pathological job cannot balloon the frame (the dropped
/// tail is the deepest-nested spans; the coarse phase picture survives).
const MAX_FRAME_SPANS: usize = 4096;

fn render_result_frame(
    id: usize,
    report: &AcceptabilityReport,
    elapsed_ms: u64,
    spans: &[crate::telemetry::Event],
    mark_us: u64,
) -> String {
    let engine = &report.engine;
    let mut out = format!(
        "{{\"type\":\"result\",\"id\":{id},\"elapsed_ms\":{elapsed_ms},\
         \"cache_hits\":{},\"cache_misses\":{},\"cross_hits\":{},\"disk_hits\":{},\
         \"static_hits\":{},\
         \"vcgen_ms\":{},\"encode_ms\":{},\"solve_ms\":{},\"cache_ms\":{},\
         \"stages\":[",
        engine.cache_hits,
        engine.cache_misses,
        engine.cross_hits,
        engine.disk_hits,
        engine.static_hits,
        engine.elapsed_vcgen_ms,
        engine.elapsed_encode_ms,
        engine.elapsed_solve_ms,
        engine.elapsed_cache_ms,
    );
    let mut first = true;
    let mut stage_out = |stage: Stage, stage_report: &Report| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{{\"stage\":\"{}\",\"stats\":", stage_name(stage)));
        render_solver_stats(&mut out, &stage_report.stats);
        out.push_str(",\"verdicts\":[");
        for (i, result) in stage_report.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            render_verdict(&mut out, &result.verdict);
            out.push_str(&format!(",\"cached\":{}", u8::from(result.cached)));
            out.push('}');
        }
        out.push_str("]}");
    };
    if report.stages.original {
        stage_out(Stage::Original, &report.original);
    }
    if let Some(intermediate) = &report.intermediate {
        stage_out(Stage::Intermediate, intermediate);
    }
    if report.stages.relaxed {
        stage_out(Stage::Relaxed, &report.relaxed);
    }
    out.push(']');
    if !spans.is_empty() {
        // Worker spans ride back as timestamps *relative to the job
        // dispatch mark*: the coordinator re-anchors them into its own
        // timeline (see `run_job_on_worker`), so the two processes never
        // need a shared clock.
        out.push_str(",\"spans\":[");
        for (i, event) in spans.iter().take(MAX_FRAME_SPANS).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":{},\"rel_ts_us\":{},\"dur_us\":{},\"tid\":{}",
                json_string(&event.name),
                json_string(&event.cat),
                event.ts_us.saturating_sub(mark_us),
                event.dur_us,
                event.tid,
            ));
            if !event.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (key, value)) in event.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{}", json_string(key), value.render()));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push(']');
    }
    out.push('}');
    out
}

pub(crate) fn render_error_frame(id: usize, error: &str) -> String {
    format!(
        "{{\"type\":\"result\",\"id\":{id},\"error\":{}}}",
        json_string(error)
    )
}

// ---------------------------------------------------------------------
// Frame parsing (coordinator side, plus the worker's request reader)
// ---------------------------------------------------------------------

pub(crate) fn field_str<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a str, String> {
    match get(fields, key) {
        Some(Json::Str(s)) => Ok(s),
        Some(_) => Err(format!("non-string `{key}`")),
        None => Err(format!("missing `{key}`")),
    }
}

pub(crate) fn field_u64(fields: &[(String, Json)], key: &str) -> Result<u64, String> {
    match get(fields, key) {
        Some(Json::Int(n)) => u64::try_from(*n).map_err(|_| format!("`{key}` out of range")),
        Some(_) => Err(format!("non-integer `{key}`")),
        None => Err(format!("missing `{key}`")),
    }
}

fn parse_solver_stats(value: &Json) -> Result<SolverStats, String> {
    let fields = value.as_object()?;
    Ok(SolverStats {
        queries: field_u64(fields, "queries")?,
        pivots: field_u64(fields, "pivots")?,
        branch_nodes: field_u64(fields, "branch_nodes")?,
        atoms: field_u64(fields, "atoms")?,
        max_atoms: field_u64(fields, "max_atoms")?,
        sat: SatStats {
            decisions: field_u64(fields, "decisions")?,
            conflicts: field_u64(fields, "conflicts")?,
            propagations: field_u64(fields, "propagations")?,
            restarts: field_u64(fields, "restarts")?,
            theory_checks: field_u64(fields, "theory_checks")?,
        },
    })
}

/// One stage's slice of a result frame.
pub(crate) struct WireStage {
    stage: Stage,
    stats: SolverStats,
    verdicts: Vec<(Validity, bool)>,
}

/// A parsed result frame.
pub(crate) struct WireResult {
    pub(crate) id: usize,
    pub(crate) elapsed_ms: u64,
    pub(crate) engine: EngineStats,
    pub(crate) stages: Vec<WireStage>,
    /// Worker-side telemetry spans, `ts_us` still *relative* to the job
    /// dispatch mark (`pid` is a placeholder until the coordinator
    /// re-anchors them into its timeline).
    pub(crate) spans: Vec<crate::telemetry::Event>,
    pub(crate) error: Option<String>,
}

pub(crate) fn parse_result_frame(line: &str) -> Result<WireResult, String> {
    let record = parse_json(line)?;
    let fields = record.as_object()?;
    if field_str(fields, "type")? != "result" {
        return Err("expected a result frame".to_string());
    }
    let id = field_u64(fields, "id")? as usize;
    if let Some(Json::Str(error)) = get(fields, "error") {
        return Ok(WireResult {
            id,
            elapsed_ms: 0,
            engine: EngineStats::default(),
            stages: Vec::new(),
            spans: Vec::new(),
            error: Some(error.clone()),
        });
    }
    let engine = EngineStats {
        cache_hits: field_u64(fields, "cache_hits")?,
        cache_misses: field_u64(fields, "cache_misses")?,
        cross_hits: field_u64(fields, "cross_hits")?,
        disk_hits: field_u64(fields, "disk_hits")?,
        // Optional: a worker predating the static analysis layer simply
        // reports no static hits.
        static_hits: field_u64(fields, "static_hits").unwrap_or(0),
        // Optional: phase timings from a worker predating the telemetry
        // layer default to zero.
        elapsed_vcgen_ms: field_u64(fields, "vcgen_ms").unwrap_or(0),
        elapsed_encode_ms: field_u64(fields, "encode_ms").unwrap_or(0),
        elapsed_solve_ms: field_u64(fields, "solve_ms").unwrap_or(0),
        elapsed_cache_ms: field_u64(fields, "cache_ms").unwrap_or(0),
        ..EngineStats::default()
    };
    let mut stages = Vec::new();
    let stage_items = get(fields, "stages")
        .ok_or("missing `stages`")?
        .as_array()?;
    for item in stage_items {
        let stage_fields = item.as_object()?;
        let stage = stage_by_name(field_str(stage_fields, "stage")?)?;
        let stats = parse_solver_stats(get(stage_fields, "stats").ok_or("missing `stats`")?)?;
        let mut verdicts = Vec::new();
        for verdict_item in get(stage_fields, "verdicts")
            .ok_or("missing `verdicts`")?
            .as_array()?
        {
            let verdict_fields = verdict_item.as_object()?;
            let verdict = parse_verdict(verdict_fields)?;
            let cached = field_u64(verdict_fields, "cached")? != 0;
            verdicts.push((verdict, cached));
        }
        stages.push(WireStage {
            stage,
            stats,
            verdicts,
        });
    }
    // Optional: only present when the coordinator asked for tracing. A
    // malformed span argument degrades to skipping that argument, never
    // the frame — telemetry must not fail a verdict-bearing result.
    let mut spans = Vec::new();
    if let Some(items) = get(fields, "spans") {
        for item in items.as_array()? {
            let span_fields = item.as_object()?;
            let mut args = Vec::new();
            if let Some(arg_items) = get(span_fields, "args") {
                for (key, value) in arg_items.as_object()? {
                    let value = match value {
                        Json::Int(n) => {
                            if let Ok(unsigned) = u64::try_from(*n) {
                                crate::telemetry::ArgValue::U64(unsigned)
                            } else if let Ok(signed) = i64::try_from(*n) {
                                crate::telemetry::ArgValue::I64(signed)
                            } else {
                                crate::telemetry::ArgValue::Str(n.to_string())
                            }
                        }
                        Json::Str(s) => crate::telemetry::ArgValue::Str(s.clone()),
                        _ => continue,
                    };
                    args.push((std::borrow::Cow::Owned(key.clone()), value));
                }
            }
            spans.push(crate::telemetry::Event {
                name: std::borrow::Cow::Owned(field_str(span_fields, "name")?.to_string()),
                cat: std::borrow::Cow::Owned(field_str(span_fields, "cat")?.to_string()),
                ts_us: field_u64(span_fields, "rel_ts_us")?,
                dur_us: field_u64(span_fields, "dur_us")?,
                pid: 0, // assigned when the coordinator re-anchors
                tid: field_u64(span_fields, "tid")?,
                args,
            });
        }
    }
    Ok(WireResult {
        id,
        elapsed_ms: field_u64(fields, "elapsed_ms")?,
        engine,
        stages,
        spans,
        error: None,
    })
}

// ---------------------------------------------------------------------
// The worker (the entire logic of the `relaxed-shardd` binary)
// ---------------------------------------------------------------------

/// A fault injected into the worker for shard fault-tolerance tests, read
/// from `RELAXED_SHARDD_FAULT`:
///
/// * `crash:<n>` — exit abruptly (code 101) when the n-th job of this
///   process arrives, before responding;
/// * `garbage:<n>` — answer the n-th job with a malformed frame instead
///   of a result.
///
/// Unset or unparsable values inject nothing. Production corpora never
/// set this; it exists so the coordinator's requeue/retry path is
/// testable against real process crashes and real protocol corruption.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Fault {
    /// No fault injected (the default).
    #[default]
    None,
    /// Exit without responding when job number `n` (1-based) arrives.
    Crash(u64),
    /// Emit a malformed frame for job number `n` (1-based).
    Garbage(u64),
}

impl Fault {
    /// Reads the fault hook from `RELAXED_SHARDD_FAULT`.
    pub fn from_env() -> Fault {
        match std::env::var("RELAXED_SHARDD_FAULT") {
            Ok(value) => Fault::parse(&value),
            Err(_) => Fault::None,
        }
    }

    fn parse(value: &str) -> Fault {
        let Some((kind, n)) = value.split_once(':') else {
            return Fault::None;
        };
        let Ok(n) = n.trim().parse::<u64>() else {
            return Fault::None;
        };
        match kind.trim() {
            "crash" => Fault::Crash(n),
            "garbage" => Fault::Garbage(n),
            _ => Fault::None,
        }
    }
}

/// The `relaxed-shardd` entry point: runs [`worker_loop`] over the
/// process's stdin/stdout with the [`Fault`] hook from the environment.
/// The worker binary is a one-line `main` calling this, so the entire
/// protocol implementation lives (and is unit-tested) in this module.
// Bin entry point: stderr is the process's own surface, not a library's.
#[allow(clippy::print_stderr)]
pub fn worker_main() -> std::process::ExitCode {
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout().lock();
    match worker_loop(stdin, stdout, Fault::from_env()) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{WORKER_BINARY}: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

/// The worker side of the shard protocol: reads a `config` frame, then
/// `job` frames, verifying each program through one [`Verifier`] session
/// and writing a `result` frame per job; EOF is the shutdown signal (a
/// final incremental persist runs, then the loop returns). See the
/// [module docs](self) for the frame shapes.
///
/// # Errors
///
/// Returns an error on I/O failure or a malformed request frame — the
/// coordinator treats a dead worker as a crash and requeues its job.
pub fn worker_loop(
    input: impl BufRead,
    mut output: impl Write,
    fault: Fault,
) -> std::io::Result<()> {
    let violation = |reason: String| std::io::Error::new(std::io::ErrorKind::InvalidData, reason);
    let mut verifier: Option<Verifier> = None;
    let mut handled = 0u64;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record = parse_json(&line).map_err(&violation)?;
        let fields = record.as_object().map_err(&violation)?;
        match field_str(fields, "type").map_err(&violation)? {
            "config" => {
                let config = parse_config_frame(fields).map_err(&violation)?;
                verifier = Some(Verifier::with_config(config));
                // Capture is enabled here — NOT in `parse_config_frame`,
                // which the service daemon shares for validating *client*
                // sessions (a client frame must never switch the daemon
                // into capture mode).
                if field_u64(fields, "trace").unwrap_or(0) != 0 {
                    crate::telemetry::capture_start();
                }
                writeln!(
                    output,
                    "{{\"type\":\"ready\",\"proto\":{PROTOCOL_VERSION}}}"
                )?;
                output.flush()?;
            }
            "job" => {
                let id = field_u64(fields, "id").map_err(&violation)? as usize;
                handled += 1;
                match fault {
                    Fault::Crash(n) if handled == n => std::process::exit(101),
                    Fault::Garbage(n) if handled == n => {
                        writeln!(output, "@@ corrupt frame (injected by {WORKER_BINARY}) @@")?;
                        output.flush()?;
                        continue;
                    }
                    _ => {}
                }
                let Some(session) = &verifier else {
                    writeln!(output, "{}", render_error_frame(id, "job before config"))?;
                    output.flush()?;
                    continue;
                };
                // Everything captured after this mark belongs to this
                // job: span timestamps ship relative to it.
                let mark_us = crate::telemetry::now_us();
                let frame = match run_job(session, fields) {
                    Ok((report, elapsed_ms)) => {
                        let spans = crate::telemetry::capture_take();
                        render_result_frame(id, &report, elapsed_ms, &spans, mark_us)
                    }
                    Err(reason) => {
                        // Discard the failed job's partial capture so it
                        // cannot bleed into the next job's frame.
                        drop(crate::telemetry::capture_take());
                        render_error_frame(id, &reason)
                    }
                };
                writeln!(output, "{frame}")?;
                output.flush()?;
            }
            other => return Err(violation(format!("unknown frame type {other:?}"))),
        }
    }
    // EOF: flush anything a failed per-job append left behind. This is an
    // append, never a rewrite — a worker's shutdown can never clobber
    // verdicts a still-running sibling just published.
    if let Some(session) = &verifier {
        let _ = session.engine().append_pending();
    }
    Ok(())
}

/// Parses the session [`Config`] out of a `config` frame's fields — the
/// worker side of the handshake, shared with the service daemon (which
/// validates client sessions against its fleet's configuration).
pub(crate) fn parse_config_frame(fields: &[(String, Json)]) -> Result<Config, String> {
    let proto = field_u64(fields, "proto")?;
    if proto != u64::from(PROTOCOL_VERSION) {
        return Err(format!(
            "protocol mismatch: coordinator speaks {proto}, this worker {PROTOCOL_VERSION}"
        ));
    }
    let mut config = Config {
        max_conflicts: field_u64(fields, "max_conflicts")?,
        branch_budget: field_u64(fields, "branch_budget")?,
        // Optional with a permissive default: these knobs are
        // verdict-equivalent, so a coordinator that predates one just
        // gets the worker's default behavior.
        incremental: field_u64(fields, "incremental") != Ok(0),
        prefilter: field_u64(fields, "prefilter") != Ok(0),
        workers: field_u64(fields, "workers")? as usize,
        cache_max: field_u64(fields, "cache_max")? as usize,
        stages: parse_stages(field_str(fields, "stages")?)?,
        ..Config::default()
    };
    let cache = field_str(fields, "cache")?;
    if !cache.is_empty() {
        config.cache = CachePolicy::Persistent {
            path: PathBuf::from(cache),
        };
    } else if field_u64(fields, "per_program")? != 0 {
        // The session's per-program isolation travels with the job: each
        // program gets a fresh verdict cache inside the worker too.
        config.cache = CachePolicy::PerProgram;
    }
    Ok(config)
}

/// Parses and verifies one job through the worker's session, persisting
/// incrementally around the check so sibling workers can reuse the
/// verdicts. A whole-program job (`batches <= 1`, the default for frames
/// without batch fields) runs the full staged check; a goal-batch job
/// re-generates the stage VCs, computes the same balanced contiguous
/// split as the coordinator, and discharges only its slice.
fn run_job(
    session: &Verifier,
    fields: &[(String, Json)],
) -> Result<(AcceptabilityReport, u64), String> {
    let name = field_str(fields, "name")?;
    let program =
        parse_program(field_str(fields, "program")?).map_err(|e| format!("program: {e}"))?;
    let spec = Spec {
        pre: parse_formula(field_str(fields, "pre")?).map_err(|e| format!("pre: {e}"))?,
        post: parse_formula(field_str(fields, "post")?).map_err(|e| format!("post: {e}"))?,
        rel_pre: parse_rel_formula(field_str(fields, "rel_pre")?)
            .map_err(|e| format!("rel_pre: {e}"))?,
        rel_post: parse_rel_formula(field_str(fields, "rel_post")?)
            .map_err(|e| format!("rel_post: {e}"))?,
    };
    // Optional with a permissive default: a coordinator that predates
    // goal batching simply ships whole programs.
    let batch = field_u64(fields, "batch").unwrap_or(0) as usize;
    let batches = (field_u64(fields, "batches").unwrap_or(1) as usize).max(1);
    // Pick up verdicts sibling workers persisted since the last job: they
    // answer shared goals as disk hits, the cross-process payoff.
    session.engine().refresh_from_disk();
    let started = Instant::now();
    let outcome = if batches <= 1 {
        let report = session
            .check_corpus_named(&[(name, program, spec)])
            .entries
            .remove(0);
        match report.outcome {
            Ok(outcome) => outcome,
            Err(e) => return Err(e.to_string()),
        }
    } else {
        run_batch_job(session, &program, &spec, batch, batches)?
    };
    let elapsed_ms = elapsed_ms_since(started);
    // Publish this job's fresh verdicts incrementally, by *appending* to
    // the shared store: an append can never drop entries a sibling worker
    // persisted concurrently (duplicate keys resolve later-wins at load).
    if let Err(e) = session.engine().append_pending() {
        crate::diag::warn(format_args!(
            "{WORKER_BINARY}: failed to append to the verdict cache: {e}"
        ));
    }
    Ok((outcome, elapsed_ms))
}

/// Discharges one goal batch of `program`: the same VC generation and
/// the same [`batch_bounds`] split as the coordinator, so the returned
/// per-stage verdict lists zip exactly with the coordinator's
/// [`ShardJob::stage_vcs`] slice. Every selected stage appears in the
/// report (possibly with an empty slice), keeping the result frame's
/// stage spectrum identical to the scheduled one.
fn run_batch_job(
    session: &Verifier,
    program: &Program,
    spec: &Spec,
    batch: usize,
    batches: usize,
) -> Result<AcceptabilityReport, String> {
    let stages = session.config().stages;
    let mut prepared = Vec::new();
    for stage in [Stage::Original, Stage::Intermediate, Stage::Relaxed] {
        if !stages.contains(stage) {
            continue;
        }
        prepared.push((
            stage,
            stage_vcs(stage, program, spec).map_err(|e| e.to_string())?,
        ));
    }
    let total: usize = prepared.iter().map(|(_, vcs)| vcs.len()).sum();
    if batch >= batches || batches > total.max(1) {
        return Err(format!(
            "batch {batch}/{batches} is inconsistent with {total} obligations"
        ));
    }
    let (start, end) = batch_bounds(total, batches, batch);
    let mut report_stages = StageSet::none();
    let mut original = Report::default();
    let mut intermediate = None;
    let mut relaxed = Report::default();
    let mut engine = EngineStats::default();
    for (stage, vcs) in batch_stage_slice(&prepared, start, end) {
        let stage_report = session.engine().discharge(vcs);
        engine.absorb(&stage_report.engine);
        report_stages = report_stages.with(stage);
        match stage {
            Stage::Original => original = stage_report,
            Stage::Intermediate => intermediate = Some(stage_report),
            Stage::Relaxed => relaxed = stage_report,
        }
    }
    Ok(AcceptabilityReport {
        stages: report_stages,
        original,
        intermediate,
        relaxed,
        engine,
    })
}

// ---------------------------------------------------------------------
// The coordinator
// ---------------------------------------------------------------------

/// One goal batch prepared for distribution (to a shard worker or, via
/// [`crate::service`], to a daemon's fleet). Under the default
/// `goal_shards = 1` a job is a whole program; otherwise a program fans
/// out into up to `goal_shards` jobs over contiguous slices of its
/// concatenated obligation list.
pub(crate) struct ShardJob {
    /// Corpus-unique wire job id (one per batch, not per program).
    pub(crate) id: usize,
    /// Index of the program in corpus input order — the result slot this
    /// job's (partial) entry merges into.
    pub(crate) slot: usize,
    /// This job's batch index within the program's split.
    pub(crate) batch: usize,
    /// Total batches the program was split into (1 = whole program).
    pub(crate) batches: usize,
    pub(crate) name: String,
    pub(crate) frame: String,
    /// The locally generated obligations of every selected stage, in
    /// pipeline order, restricted to this batch's contiguous slice —
    /// zipped with the worker's verdicts to rebuild the batch's partial
    /// report. Stages whose goals fall entirely outside the slice stay
    /// present with an empty list, so the stage spectrum is stable.
    pub(crate) stage_vcs: Vec<(Stage, Vec<Vc>)>,
    pub(crate) vc_count: usize,
    /// Measured scheduling cost: the program's observed `elapsed_ms`
    /// divided across its batches, when the session has an observation.
    pub(crate) cost: u64,
    pub(crate) attempts: u32,
    pub(crate) last_error: String,
}

/// The balanced contiguous split: half-open bounds of batch `batch` of
/// `batches` over a `total`-element sequence. Batches differ in size by
/// at most one, cover the sequence exactly, and are computed identically
/// by the coordinator and the worker (the protocol ships only
/// `batch`/`batches`, never the bounds).
pub(crate) fn batch_bounds(total: usize, batches: usize, batch: usize) -> (usize, usize) {
    let base = total / batches;
    let rem = total % batches;
    let start = batch * base + batch.min(rem);
    (start, start + base + usize::from(batch < rem))
}

/// Restricts per-stage obligation lists to the global goal range
/// `[start, end)` over their concatenation. Every stage stays present
/// (possibly empty), so both protocol sides agree on the stage spectrum
/// of every batch.
pub(crate) fn batch_stage_slice(
    prepared: &[(Stage, Vec<Vc>)],
    start: usize,
    end: usize,
) -> Vec<(Stage, Vec<Vc>)> {
    let mut out = Vec::with_capacity(prepared.len());
    let mut offset = 0usize;
    for (stage, vcs) in prepared {
        let lo = start.clamp(offset, offset + vcs.len()) - offset;
        let hi = end.clamp(offset, offset + vcs.len()) - offset;
        out.push((*stage, vcs[lo..hi].to_vec()));
        offset += vcs.len();
    }
    out
}

/// Generates every program's obligations locally, up front: `VcgenError`s
/// are recorded into `slots` exactly as the in-process driver records
/// them (never shipped over a wire), each program fans out into up to
/// `goal_shards` goal-batch jobs, and the returned job list is ordered
/// longest-first (id-tie-broken for determinism) — by *observed* cost
/// when the session's cost history covers every scheduled program, by VC
/// count otherwise.
pub(crate) fn prepare_jobs(
    stages: StageSet,
    entries: &[(String, &Program, &Spec)],
    slots: &mut [Option<CorpusEntry>],
    goal_shards: usize,
    costs: &std::collections::HashMap<String, u64>,
) -> Vec<ShardJob> {
    let mut jobs: Vec<ShardJob> = Vec::new();
    let mut next_id = 0usize;
    let mut all_observed = true;
    for (slot, (name, program, spec)) in entries.iter().enumerate() {
        let mut prepared = Vec::new();
        let mut failed = None;
        for stage in [Stage::Original, Stage::Intermediate, Stage::Relaxed] {
            if !stages.contains(stage) {
                continue;
            }
            match stage_vcs(stage, program, spec) {
                Ok(vcs) => prepared.push((stage, vcs)),
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = failed {
            slots[slot] = Some(CorpusEntry {
                name: name.clone(),
                elapsed_ms: 0,
                lint: Vec::new(),
                outcome: Err(CorpusError::Vcgen(e)),
            });
            continue;
        }
        let total: usize = prepared.iter().map(|(_, vcs)| vcs.len()).sum();
        let batches = goal_shards.max(1).min(total.max(1));
        let observed = costs.get(name.as_str()).copied();
        all_observed &= observed.is_some();
        for batch in 0..batches {
            let (start, end) = batch_bounds(total, batches, batch);
            jobs.push(ShardJob {
                id: next_id,
                slot,
                batch,
                batches,
                name: name.clone(),
                frame: render_job_frame(next_id, name, program, spec, batch, batches),
                stage_vcs: batch_stage_slice(&prepared, start, end),
                vc_count: end - start,
                cost: observed.unwrap_or(0) / batches as u64,
                attempts: 0,
                last_error: String::new(),
            });
            next_id += 1;
        }
    }
    // Longest first: the most expensive proofs start immediately, so the
    // corpus tail is short jobs instead of one straggler. Measured wall
    // time beats the VC-count estimate, but only once every program has
    // an observation — a mixed ordering would starve the unmeasured.
    if all_observed {
        jobs.sort_by_key(|job| (std::cmp::Reverse(job.cost), job.id));
    } else {
        jobs.sort_by_key(|job| (std::cmp::Reverse(job.vc_count), job.id));
    }
    jobs
}

/// A framed newline-JSON channel to a protocol peer. One frame per
/// [`send`](Transport::send); [`recv_opt`](Transport::recv_opt) waits at
/// most a timeout for the next frame, distinguishing "still quiet"
/// (`Ok(None)`) from a dead channel (`Err`). The shard coordinator speaks
/// it over child-process pipes ([`PipeTransport`]); the networked service
/// layer ([`crate::service`]) speaks the identical protocol over TCP
/// ([`TcpTransport`]). `Send` so a handle can migrate across handler
/// threads.
pub(crate) trait Transport: Send {
    /// Writes one frame (the newline is appended here) and flushes.
    fn send(&mut self, frame: &str) -> Result<(), String>;

    /// Reads the next frame, waiting at most `timeout`. `Ok(None)` means
    /// the timeout elapsed with the channel still healthy (a later call
    /// may still deliver the frame — nothing is lost).
    fn recv_opt(&mut self, timeout: Duration) -> Result<Option<String>, String>;

    /// Hard stop: tear the channel down without ceremony (kill the
    /// process / drop the socket).
    fn abort(&mut self);

    /// Graceful stop: signal end-of-jobs (stdin EOF / TCP write-half
    /// shutdown, the peer's cue to run its final persist) and wait for
    /// the peer to wind down.
    fn finish(&mut self);
}

/// [`Transport`] over a spawned worker process's stdio. Stdout is drained
/// by a detached reader thread into an mpsc channel so the coordinator
/// can time out on a hung worker instead of blocking forever.
pub(crate) struct PipeTransport {
    child: Child,
    stdin: Option<ChildStdin>,
    lines: Receiver<std::io::Result<String>>,
}

impl PipeTransport {
    pub(crate) fn spawn(binary: &std::path::Path) -> Result<PipeTransport, String> {
        let mut child = Command::new(binary)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("failed to spawn {}: {e}", binary.display()))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                if tx.send(line).is_err() {
                    break;
                }
            }
        });
        Ok(PipeTransport {
            child,
            stdin: Some(stdin),
            lines: rx,
        })
    }
}

impl Transport for PipeTransport {
    fn send(&mut self, frame: &str) -> Result<(), String> {
        let stdin = self.stdin.as_mut().expect("worker stdin open");
        stdin
            .write_all(frame.as_bytes())
            .and_then(|()| stdin.write_all(b"\n"))
            .and_then(|()| stdin.flush())
            .map_err(|e| format!("worker stdin closed: {e}"))
    }

    fn recv_opt(&mut self, timeout: Duration) -> Result<Option<String>, String> {
        match self.lines.recv_timeout(timeout) {
            Ok(Ok(line)) => Ok(Some(line)),
            Ok(Err(e)) => Err(format!("worker stdout read failed: {e}")),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(match self.child.try_wait() {
                Ok(Some(status)) => format!("worker exited unexpectedly ({status})"),
                _ => "worker exited unexpectedly".to_string(),
            }),
        }
    }

    fn abort(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn finish(&mut self) {
        // Dropping stdin is the worker's EOF signal (its cue for the
        // final incremental persist); then reap the process.
        self.stdin.take();
        let _ = self.child.wait();
    }
}

/// [`Transport`] over a TCP stream, speaking to a `relaxed-serviced`
/// daemon (or any peer of the same framed protocol). Reads are
/// deadline-bounded via `set_read_timeout`; a partially received line
/// survives in the buffer across timeouts, so slow frames are delayed,
/// never torn.
pub(crate) struct TcpTransport {
    stream: std::net::TcpStream,
    peer: String,
    buf: Vec<u8>,
}

impl TcpTransport {
    /// Connects to `addr` (`host:port`), bounding the connection attempt
    /// by `timeout` per resolved address.
    pub(crate) fn connect(addr: &str, timeout: Duration) -> Result<TcpTransport, String> {
        use std::net::ToSocketAddrs;
        let resolved: Vec<_> = addr
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve {addr}: {e}"))?
            .collect();
        let mut last = format!("{addr} did not resolve to any address");
        for sock in resolved {
            match std::net::TcpStream::connect_timeout(&sock, timeout) {
                Ok(stream) => return Ok(TcpTransport::from_stream(stream, addr.to_string())),
                Err(e) => last = format!("cannot connect to {addr}: {e}"),
            }
        }
        Err(last)
    }

    /// Wraps an already-connected stream (the daemon side of an accepted
    /// connection uses this).
    pub(crate) fn from_stream(stream: std::net::TcpStream, peer: String) -> TcpTransport {
        let _ = stream.set_nodelay(true);
        TcpTransport {
            stream,
            peer,
            buf: Vec::new(),
        }
    }

    fn take_line(&mut self) -> Option<Result<String, String>> {
        let pos = self.buf.iter().position(|&b| b == b'\n')?;
        let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
        line.pop();
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Some(String::from_utf8(line).map_err(|_| format!("non-UTF-8 frame from {}", self.peer)))
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &str) -> Result<(), String> {
        self.stream
            .write_all(frame.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .map_err(|e| format!("connection to {} lost: {e}", self.peer))
    }

    fn recv_opt(&mut self, timeout: Duration) -> Result<Option<String>, String> {
        use std::io::Read;
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(line) = self.take_line() {
                return line.map(Some);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            self.stream
                .set_read_timeout(Some(deadline - now))
                .map_err(|e| format!("connection to {} unusable: {e}", self.peer))?;
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(format!("connection to {} closed", self.peer)),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("read from {} failed: {e}", self.peer)),
            }
        }
    }

    fn abort(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    fn finish(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
    }
}

/// A live protocol peer (a spawned worker process or a TCP service
/// connection) that has completed the config/`ready` handshake, behind a
/// boxed [`Transport`].
pub(crate) struct WorkerHandle {
    transport: Box<dyn Transport>,
    /// Coordinator-assigned peer lane (1-based, process-global): names
    /// this worker's process group when its spans are re-anchored into
    /// the coordinator's trace.
    pub(crate) lane: u64,
    /// Fleet size advertised in the peer's `ready` frame — present when
    /// the peer is a `relaxed-serviced` daemon fronting a worker fleet,
    /// absent for a plain `relaxed-shardd` worker.
    pub(crate) fleet: Option<usize>,
}

impl WorkerHandle {
    /// Spawns a `relaxed-shardd` worker process and performs the config
    /// handshake over its stdio pipes.
    pub(crate) fn spawn(
        binary: &std::path::Path,
        config_frame: &str,
        ready_timeout: Duration,
    ) -> Result<WorkerHandle, String> {
        let transport = PipeTransport::spawn(binary)?;
        WorkerHandle::with_transport(Box::new(transport), config_frame, ready_timeout)
    }

    /// Connects to a `relaxed-serviced` daemon at `addr` and performs the
    /// same config handshake over TCP.
    pub(crate) fn connect(
        addr: &str,
        config_frame: &str,
        ready_timeout: Duration,
    ) -> Result<WorkerHandle, String> {
        let transport = TcpTransport::connect(addr, ready_timeout)?;
        WorkerHandle::with_transport(Box::new(transport), config_frame, ready_timeout)
    }

    fn with_transport(
        transport: Box<dyn Transport>,
        config_frame: &str,
        ready_timeout: Duration,
    ) -> Result<WorkerHandle, String> {
        static NEXT_LANE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let mut handle = WorkerHandle {
            transport,
            lane: NEXT_LANE.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            fleet: None,
        };
        match handle.handshake(config_frame, ready_timeout) {
            Ok(()) => Ok(handle),
            Err(e) => {
                handle.transport.abort();
                Err(e)
            }
        }
    }

    fn handshake(&mut self, config_frame: &str, ready_timeout: Duration) -> Result<(), String> {
        self.send(config_frame)?;
        let line = self.recv(ready_timeout)?;
        let ready = parse_json(&line).map_err(|e| format!("bad ready frame: {e}"))?;
        let fields = ready
            .as_object()
            .map_err(|e| format!("bad ready frame: {e}"))?;
        match field_str(fields, "type") {
            Ok("ready") => {}
            // A service daemon refuses incompatible sessions with a typed
            // error frame instead of dying; surface its reason verbatim.
            Ok("error") => {
                let reason = field_str(fields, "reason").unwrap_or("unspecified");
                return Err(format!("peer refused the session: {reason}"));
            }
            _ => return Err(format!("expected ready frame, got {line:?}")),
        }
        let proto = field_u64(fields, "proto").map_err(|e| format!("bad ready frame: {e}"))?;
        if proto != u64::from(PROTOCOL_VERSION) {
            return Err(format!(
                "protocol mismatch: worker speaks {proto}, coordinator {PROTOCOL_VERSION}"
            ));
        }
        if let Ok(fleet) = field_u64(fields, "fleet") {
            self.fleet = Some(fleet as usize);
        }
        Ok(())
    }

    pub(crate) fn send(&mut self, frame: &str) -> Result<(), String> {
        self.transport.send(frame)
    }

    pub(crate) fn recv(&mut self, timeout: Duration) -> Result<String, String> {
        match self.transport.recv_opt(timeout)? {
            Some(line) => Ok(line),
            None => Err(format!("worker unresponsive for {}s", timeout.as_secs())),
        }
    }

    /// [`Transport::recv_opt`] on the underlying channel — `Ok(None)` is
    /// a clean timeout the caller may retry.
    pub(crate) fn recv_opt(&mut self, timeout: Duration) -> Result<Option<String>, String> {
        self.transport.recv_opt(timeout)
    }

    pub(crate) fn kill(mut self) {
        self.transport.abort();
    }

    /// Graceful shutdown: signal end-of-jobs (which triggers the peer's
    /// final persist) and wait for it to wind down.
    pub(crate) fn shutdown(mut self) {
        self.transport.finish();
    }
}

/// The coordinator of a sharded corpus run: owns the job queue, the
/// result slots, and the per-worker handler loops. Constructed and driven
/// by [`Verifier::check_corpus`](crate::api::Verifier::check_corpus) when
/// the session's policy is
/// [`CorpusPolicy::Sharded`](crate::api::CorpusPolicy::Sharded).
struct ShardPool {
    binary: PathBuf,
    config_frame: String,
    /// Handshake patience ([`Config::ready_timeout`]).
    ready_timeout: Duration,
    /// Per-job patience ([`Config::job_timeout`]).
    job_timeout: Duration,
    /// Pending jobs, longest-first; idle handlers steal from the front.
    queue: Mutex<VecDeque<ShardJob>>,
    /// Completed (partial) entries, keyed by corpus slot and batch index;
    /// the coordinator merges a slot's batches after the run.
    done: Mutex<Vec<(usize, usize, CorpusEntry)>>,
}

impl ShardPool {
    fn pop(&self) -> Option<ShardJob> {
        self.queue.lock().expect("shard queue").pop_front()
    }

    fn complete(&self, slot: usize, batch: usize, entry: CorpusEntry) {
        self.done
            .lock()
            .expect("shard results")
            .push((slot, batch, entry));
    }

    /// Charges one failed attempt against `job`. Returns `true` once the
    /// job's attempts are exhausted, in which case it has been recorded
    /// as a per-program error; `false` means the caller should retry it
    /// on a fresh worker.
    fn record_failure(&self, job: &mut ShardJob, error: String) -> bool {
        job.attempts += 1;
        job.last_error = error;
        if job.attempts < MAX_ATTEMPTS {
            return false;
        }
        let entry = CorpusEntry {
            name: job.name.clone(),
            elapsed_ms: 0,
            lint: Vec::new(),
            outcome: Err(CorpusError::Shard(format!(
                "job failed after {} attempts; last error: {}",
                job.attempts, job.last_error
            ))),
        };
        self.complete(job.slot, job.batch, entry);
        true
    }

    /// One handler loop: owns (at most) one worker process at a time and
    /// steals jobs from the shared queue. A failed attempt (crash,
    /// malformed frame, timeout, spawn error) kills the worker and
    /// retries the job on a freshly spawned replacement — a *different*
    /// process, so a worker whose lifetime-accumulated state was the
    /// problem cannot fail the same job twice — until the job's bounded
    /// attempts run out and it is recorded as a per-program error.
    fn handler(&self) {
        let mut worker: Option<WorkerHandle> = None;
        'jobs: while let Some(mut job) = self.pop() {
            loop {
                if worker.is_none() {
                    match WorkerHandle::spawn(&self.binary, &self.config_frame, self.ready_timeout)
                    {
                        Ok(handle) => worker = Some(handle),
                        Err(e) => {
                            if self.record_failure(&mut job, e) {
                                continue 'jobs;
                            }
                            continue;
                        }
                    }
                }
                let handle = worker.as_mut().expect("worker spawned");
                match run_job_on_worker(handle, &job, self.job_timeout) {
                    Ok(entry) => {
                        self.complete(job.slot, job.batch, entry);
                        continue 'jobs;
                    }
                    Err(e) => {
                        // The channel is desynchronized (crash, corruption,
                        // or timeout): this worker cannot be trusted with
                        // another frame. Kill it; the retry (or the next
                        // job) spawns a replacement.
                        worker.take().expect("worker present").kill();
                        if self.record_failure(&mut job, e) {
                            continue 'jobs;
                        }
                    }
                }
            }
        }
        if let Some(handle) = worker {
            handle.shutdown();
        }
        // Scoped threads signal completion before their thread-local
        // destructors run: flush this handler's spans (the `shard`/`job`
        // dispatch spans) before the pool's scope joins.
        crate::telemetry::drain_thread();
    }
}

/// Sends one job to a worker and rebuilds its [`CorpusEntry`] from the
/// result frame. Any error here means the worker/channel is unusable and
/// the job must be retried elsewhere.
fn run_job_on_worker(
    worker: &mut WorkerHandle,
    job: &ShardJob,
    job_timeout: Duration,
) -> Result<CorpusEntry, String> {
    let mut job_span = crate::telemetry::span("shard", "job");
    if job_span.is_active() {
        job_span.arg("id", job.id as u64);
        job_span.arg("name", job.name.as_str());
        job_span.arg("worker", worker.lane);
    }
    // The dispatch mark anchors the worker's job-relative timestamps:
    // its clock starts (to within channel latency) when the job frame
    // leaves the coordinator.
    let dispatch_us = crate::telemetry::now_us();
    worker.send(&job.frame)?;
    let line = worker.recv(job_timeout)?;
    let wire = parse_result_frame(&line).map_err(|e| format!("malformed result frame: {e}"))?;
    if wire.id != job.id {
        return Err(format!(
            "result frame for job {} while awaiting job {}",
            wire.id, job.id
        ));
    }
    if !wire.spans.is_empty() {
        // Re-anchor the worker's spans into the coordinator timeline:
        // one process lane per worker (pids ≥ 1000 stay clear of the
        // coordinator's LOCAL_PID), worker tids inside it.
        let pid = 1000 + worker.lane;
        let events: Vec<crate::telemetry::Event> = wire
            .spans
            .into_iter()
            .map(|mut event| {
                event.ts_us = dispatch_us.saturating_add(event.ts_us);
                event.pid = pid;
                event
            })
            .collect();
        crate::telemetry::inject(&format!("shard-worker-{}", worker.lane), pid, events);
    }
    if let Some(error) = wire.error {
        // A worker-side deterministic failure (e.g. the program did not
        // re-parse): retrying elsewhere cannot help, so record it.
        return Ok(CorpusEntry {
            name: job.name.clone(),
            elapsed_ms: wire.elapsed_ms,
            lint: Vec::new(),
            outcome: Err(CorpusError::Shard(format!("worker reported: {error}"))),
        });
    }
    let report = rebuild_report(job, wire.stages, wire.engine)?;
    // Lint is filled by the coordinator after the merge (it holds the
    // programs; warnings never cross the worker wire).
    Ok(CorpusEntry {
        name: job.name.clone(),
        elapsed_ms: wire.elapsed_ms,
        lint: Vec::new(),
        outcome: Ok(report),
    })
}

/// Zips the worker's per-stage verdicts with the locally generated
/// obligations, reconstructing the [`AcceptabilityReport`] an in-process
/// check would have produced (identical verdicts; per-VC solver timings
/// stay with the process that measured them, so per-VC stats are zeroed
/// and per-stage aggregates come off the wire).
pub(crate) fn rebuild_report(
    job: &ShardJob,
    wire_stages: Vec<WireStage>,
    engine: EngineStats,
) -> Result<AcceptabilityReport, String> {
    if wire_stages.len() != job.stage_vcs.len() {
        return Err(format!(
            "result frame carries {} stages, expected {}",
            wire_stages.len(),
            job.stage_vcs.len()
        ));
    }
    let mut stages = StageSet::none();
    let mut original = Report::default();
    let mut intermediate = None;
    let mut relaxed = Report::default();
    for (wire, (stage, vcs)) in wire_stages.into_iter().zip(&job.stage_vcs) {
        if wire.stage != *stage {
            return Err(format!(
                "result frame stage {:?} does not match scheduled {:?}",
                stage_name(wire.stage),
                stage_name(*stage)
            ));
        }
        if wire.verdicts.len() != vcs.len() {
            return Err(format!(
                "stage {} carries {} verdicts for {} obligations",
                stage_name(*stage),
                wire.verdicts.len(),
                vcs.len()
            ));
        }
        let mut report = Report {
            stats: wire.stats,
            ..Report::default()
        };
        for (vc, (verdict, cached)) in vcs.iter().zip(wire.verdicts) {
            report.results.push(VcResult {
                vc: vc.clone(),
                verdict,
                stats: SolverStats::default(),
                cached,
            });
        }
        stages = stages.with(*stage);
        match stage {
            Stage::Original => original = report,
            Stage::Intermediate => intermediate = Some(report),
            Stage::Relaxed => relaxed = report,
        }
    }
    Ok(AcceptabilityReport {
        stages,
        original,
        intermediate,
        relaxed,
        engine,
    })
}

/// Merges a program's completed batch partials (in any arrival order)
/// into the single [`CorpusEntry`] a whole-program job would have
/// produced: per-stage results concatenate in batch order (batches are
/// contiguous slices of the generation order), statistics sum, and
/// `elapsed_ms` is the *maximum* across batches (they ran in parallel).
/// Any failed batch fails the program with that batch's error. Shared by
/// the shard coordinator and the service client.
pub(crate) fn merge_batch_entries(mut parts: Vec<(usize, CorpusEntry)>) -> CorpusEntry {
    parts.sort_by_key(|(batch, _)| *batch);
    if parts.len() == 1 {
        return parts.pop().expect("one part").1;
    }
    if let Some(pos) = parts.iter().position(|(_, part)| part.outcome.is_err()) {
        return parts.swap_remove(pos).1;
    }
    let name = parts[0].1.name.clone();
    let mut elapsed_ms = 0u64;
    let mut stages = StageSet::none();
    let mut original = Report::default();
    let mut intermediate: Option<Report> = None;
    let mut relaxed = Report::default();
    let mut engine = EngineStats::default();
    for (_, part) in parts {
        elapsed_ms = elapsed_ms.max(part.elapsed_ms);
        let report = part.outcome.expect("errors handled above");
        engine.absorb(&report.engine);
        if report.stages.original {
            stages = stages.with(Stage::Original);
        }
        if report.stages.relaxed {
            stages = stages.with(Stage::Relaxed);
        }
        original.merge(report.original);
        if let Some(part_intermediate) = report.intermediate {
            stages = stages.with(Stage::Intermediate);
            intermediate
                .get_or_insert_with(Report::default)
                .merge(part_intermediate);
        }
        relaxed.merge(report.relaxed);
    }
    CorpusEntry {
        name,
        elapsed_ms,
        lint: Vec::new(),
        outcome: Ok(AcceptabilityReport {
            stages,
            original,
            intermediate,
            relaxed,
            engine,
        }),
    }
}

/// Runs a corpus across worker processes — the implementation behind
/// [`CorpusPolicy::Sharded`](crate::api::CorpusPolicy::Sharded). See the
/// [module docs](self) for the architecture.
pub(crate) fn run_corpus_sharded(
    verifier: &Verifier,
    entries: Vec<(String, &Program, &Spec)>,
    shards: usize,
) -> CorpusReport {
    let started = Instant::now();
    let config = verifier.config();
    let stages = config.stages;
    let count = entries.len();

    let mut report = CorpusReport {
        stages,
        ..CorpusReport::default()
    };

    let mut slots: Vec<Option<CorpusEntry>> = (0..count).map(|_| None).collect();
    let jobs = prepare_jobs(
        stages,
        &entries,
        &mut slots,
        config.goal_shards,
        &verifier.cost_snapshot(),
    );
    // Goal batching can yield more jobs than programs, so the process
    // fan-out clamps to the *job* count: one huge program split into
    // batches still saturates every worker.
    let shards = shards.clamp(1, jobs.len().max(1));

    // Per-worker thread budget: the leftover parallelism once jobs fan
    // out across processes (mirrors the in-process corpus driver).
    let budget = config.discharge_config().effective_parallelism();
    let per_worker = (budget / shards).max(1);

    if !jobs.is_empty() {
        match resolve_worker(config) {
            Ok(binary) => {
                let job_count = jobs.len();
                // Batches scheduled per slot, to verify merge completeness.
                let mut expected = vec![0usize; count];
                for job in &jobs {
                    expected[job.slot] = job.batches;
                }
                let pool = ShardPool {
                    binary,
                    config_frame: render_config_frame(config, per_worker),
                    ready_timeout: config.ready_timeout,
                    job_timeout: config.job_timeout,
                    queue: Mutex::new(jobs.into()),
                    done: Mutex::new(Vec::with_capacity(job_count)),
                };
                std::thread::scope(|scope| {
                    for _ in 0..shards {
                        scope.spawn(|| pool.handler());
                    }
                });
                let mut parts: Vec<Vec<(usize, CorpusEntry)>> =
                    (0..count).map(|_| Vec::new()).collect();
                for (slot, batch, entry) in pool.done.into_inner().expect("shard results") {
                    parts[slot].push((batch, entry));
                }
                for (slot, list) in parts.into_iter().enumerate() {
                    if list.is_empty() {
                        continue;
                    }
                    if list.len() != expected[slot] {
                        // Unreachable by construction (every queued job
                        // completes or errors); degrade loudly rather
                        // than merge a partial program.
                        slots[slot] = Some(CorpusEntry {
                            name: list[0].1.name.clone(),
                            elapsed_ms: 0,
                            lint: Vec::new(),
                            outcome: Err(CorpusError::Shard(format!(
                                "{} of {} goal batches were lost by the pool",
                                expected[slot] - list.len().min(expected[slot]),
                                expected[slot]
                            ))),
                        });
                        continue;
                    }
                    slots[slot] = Some(merge_batch_entries(list));
                }
            }
            Err(reason) => {
                // No worker binary: every distributable program errs with
                // the same actionable message (no silent in-process
                // fallback — a sharded run that was not sharded would
                // corrupt benchmark conclusions).
                for job in jobs {
                    slots[job.slot] = Some(CorpusEntry {
                        name: job.name,
                        elapsed_ms: 0,
                        lint: Vec::new(),
                        outcome: Err(CorpusError::Shard(reason.clone())),
                    });
                }
            }
        }
    }

    finalize_corpus_report(&mut report, slots, &entries, &|_| {
        CorpusError::Shard("job was lost by the pool".to_string())
    });
    // Corpus-level parallelism is the process fan-out.
    report.engine.workers = shards;
    report.elapsed_ms = elapsed_ms_since(started);
    // Warm the coordinator's own session cache from the store the workers
    // populated, so later in-process checks (or the next wave) reuse the
    // corpus verdicts.
    verifier.engine().refresh_from_disk();
    report
}

/// Fills the report from the completed `slots`, attaching
/// coordinator-side lint (warnings never cross a wire) and absorbing
/// per-program engine/solver statistics — the merge tail shared by the
/// sharded and service corpus drivers. `lost` names the error for a slot
/// no job ever filled (unreachable by construction; degrade loudly rather
/// than panic the whole corpus if a future refactor breaks that
/// invariant).
pub(crate) fn finalize_corpus_report(
    report: &mut CorpusReport,
    slots: Vec<Option<CorpusEntry>>,
    entries: &[(String, &Program, &Spec)],
    lost: &dyn Fn(usize) -> CorpusError,
) {
    for (index, slot) in slots.into_iter().enumerate() {
        let mut entry = slot.unwrap_or_else(|| CorpusEntry {
            name: format!("program_{index}"),
            elapsed_ms: 0,
            lint: Vec::new(),
            outcome: Err(lost(index)),
        });
        if let Some((_, program, spec)) = entries.get(index) {
            entry.lint = crate::api::rendered_lint(program, spec);
        }
        if let Ok(program_report) = &entry.outcome {
            report.engine.absorb(&program_report.engine);
            report.stats.absorb(&program_report.original.stats);
            if let Some(intermediate) = &program_report.intermediate {
                report.stats.absorb(&intermediate.stats);
            }
            report.stats.absorb(&program_report.relaxed.stats);
        }
        report.entries.push(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxed_lang::parse_program;

    fn toy() -> (Program, Spec) {
        let program = parse_program(
            "x0 = x;
             relax (x) st (x0 <= x && x <= x0 + 2);
             relate l1 : x<o> <= x<r> && x<r> - x<o> <= 2;",
        )
        .unwrap();
        let mut spec = Spec::synced(&program);
        spec.rel_pre = parse_rel_formula("x<o> == x<r>").unwrap();
        (program, spec)
    }

    /// Drives the worker loop in-process over string pipes.
    fn drive_worker(frames: &str, fault: Fault) -> (std::io::Result<()>, String) {
        let mut output = Vec::new();
        let result = worker_loop(frames.as_bytes(), &mut output, fault);
        (result, String::from_utf8(output).unwrap())
    }

    fn toy_frames() -> String {
        let (program, spec) = toy();
        let config = Config {
            workers: 1,
            ..Config::default()
        };
        format!(
            "{}\n{}\n",
            render_config_frame(&config, 1),
            render_job_frame(0, "toy", &program, &spec, 0, 1)
        )
    }

    #[test]
    fn stage_set_round_trips_through_the_wire() {
        for stages in [
            StageSet::default(),
            StageSet::all(),
            StageSet::none(),
            StageSet::only(Stage::Intermediate),
        ] {
            assert_eq!(parse_stages(&render_stages(stages)).unwrap(), stages);
        }
        assert!(parse_stages("original,bogus").is_err());
    }

    #[test]
    fn worker_answers_a_job_with_matching_verdicts() {
        let (result, output) = drive_worker(&toy_frames(), Fault::None);
        result.unwrap();
        let mut lines = output.lines();
        let ready = lines.next().unwrap();
        assert!(ready.contains("\"type\":\"ready\""), "{ready}");
        let wire = parse_result_frame(lines.next().unwrap()).unwrap();
        assert_eq!(wire.id, 0);
        assert!(wire.error.is_none());
        // The wire verdicts match a direct in-process check.
        let (program, spec) = toy();
        let direct = Verifier::builder()
            .workers(1)
            .build()
            .check(&program, &spec)
            .unwrap();
        let direct_stages = [&direct.original, &direct.relaxed];
        assert_eq!(wire.stages.len(), 2);
        for (wire_stage, direct_report) in wire.stages.iter().zip(direct_stages) {
            assert_eq!(wire_stage.verdicts.len(), direct_report.results.len());
            for ((verdict, _), expected) in wire_stage.verdicts.iter().zip(&direct_report.results) {
                assert_eq!(verdict, &expected.verdict);
            }
        }
    }

    #[test]
    fn per_program_policy_travels_to_the_worker() {
        // Two identical jobs. Under the default Shared policy the second
        // is answered entirely from the worker's session cache; under
        // PerProgram the worker must isolate the programs and re-solve.
        let (program, spec) = toy();
        let frames = |config: &Config| {
            format!(
                "{}\n{}\n{}\n",
                render_config_frame(config, 1),
                render_job_frame(0, "first", &program, &spec, 0, 1),
                render_job_frame(1, "second", &program, &spec, 0, 1)
            )
        };
        let shared = Config {
            workers: 1,
            ..Config::default()
        };
        let isolated = Config {
            cache: CachePolicy::PerProgram,
            ..shared.clone()
        };
        let second_result = |config: &Config| {
            let (result, output) = drive_worker(&frames(config), Fault::None);
            result.unwrap();
            parse_result_frame(output.lines().nth(2).unwrap()).unwrap()
        };
        let shared_second = second_result(&shared);
        assert_eq!(shared_second.engine.cache_misses, 0, "shared cache reuses");
        let isolated_second = second_result(&isolated);
        assert!(
            isolated_second.engine.cache_misses > 0,
            "PerProgram must not reuse verdicts across programs: {:?}",
            isolated_second.engine
        );
    }

    #[test]
    fn worker_reports_unparsable_programs_as_job_errors() {
        let config = Config::default();
        let frames = format!(
            "{}\n{{\"type\":\"job\",\"id\":7,\"name\":\"bad\",\"program\":\"while (\",\
             \"pre\":\"true\",\"post\":\"true\",\"rel_pre\":\"true\",\"rel_post\":\"true\"}}\n",
            render_config_frame(&config, 1)
        );
        let (result, output) = drive_worker(&frames, Fault::None);
        result.unwrap();
        let wire = parse_result_frame(output.lines().nth(1).unwrap()).unwrap();
        assert_eq!(wire.id, 7);
        assert!(wire.error.unwrap().contains("program:"));
    }

    #[test]
    fn worker_rejects_jobs_before_config() {
        let frames = "{\"type\":\"job\",\"id\":1,\"name\":\"x\",\"program\":\"skip;\",\
                      \"pre\":\"true\",\"post\":\"true\",\"rel_pre\":\"true\",\"rel_post\":\"true\"}\n";
        let (result, output) = drive_worker(frames, Fault::None);
        result.unwrap();
        let wire = parse_result_frame(output.lines().next().unwrap()).unwrap();
        assert!(wire.error.unwrap().contains("job before config"));
    }

    #[test]
    fn worker_dies_on_malformed_request_frames() {
        let (result, _) = drive_worker("not a frame\n", Fault::None);
        assert!(result.is_err());
        let (result, _) = drive_worker("{\"type\":\"mystery\"}\n", Fault::None);
        assert!(result.is_err());
    }

    #[test]
    fn garbage_fault_corrupts_exactly_the_chosen_job() {
        let (result, output) = drive_worker(&toy_frames(), Fault::Garbage(1));
        result.unwrap();
        let corrupted = output.lines().nth(1).unwrap();
        assert!(parse_result_frame(corrupted).is_err(), "{corrupted}");
    }

    #[test]
    fn fault_hook_parses_env_values() {
        assert_eq!(Fault::parse("crash:2"), Fault::Crash(2));
        assert_eq!(Fault::parse("garbage:1"), Fault::Garbage(1));
        assert_eq!(Fault::parse(""), Fault::None);
        assert_eq!(Fault::parse("crash"), Fault::None);
        assert_eq!(Fault::parse("crash:x"), Fault::None);
        assert_eq!(Fault::parse("meltdown:3"), Fault::None);
    }

    #[test]
    fn result_frames_round_trip_solver_stats_and_verdicts() {
        let (program, spec) = toy();
        let report = Verifier::builder()
            .workers(1)
            .build()
            .check(&program, &spec)
            .unwrap();
        let frame = render_result_frame(9, &report, 123, &[], 0);
        let wire = parse_result_frame(&frame).unwrap();
        assert_eq!(wire.id, 9);
        assert_eq!(wire.elapsed_ms, 123);
        assert_eq!(wire.engine.cache_hits, report.engine.cache_hits);
        assert_eq!(wire.stages[0].stats, report.original.stats);
        assert_eq!(wire.stages[1].stats, report.relaxed.stats);
        let cached_on_wire: usize = wire.stages[1]
            .verdicts
            .iter()
            .filter(|(_, cached)| *cached)
            .count();
        let cached_direct = report.relaxed.results.iter().filter(|r| r.cached).count();
        assert_eq!(cached_on_wire, cached_direct);
    }

    #[test]
    fn programs_and_specs_survive_the_wire_rendering() {
        // The job frame ships pretty-printed source; it must re-parse to
        // the identical program (the roundtrip property the protocol
        // rests on).
        let (program, spec) = toy();
        let reparsed = parse_program(&program.to_string()).unwrap();
        assert_eq!(program, reparsed);
        assert_eq!(
            spec.rel_pre,
            parse_rel_formula(&spec.rel_pre.to_string()).unwrap()
        );
    }

    #[test]
    fn batch_bounds_are_balanced_contiguous_and_covering() {
        for total in [0usize, 1, 5, 7, 16, 100] {
            for batches in [1usize, 2, 3, 5, 16] {
                let batches = batches.min(total.max(1));
                let mut cursor = 0;
                let mut sizes = Vec::new();
                for batch in 0..batches {
                    let (start, end) = batch_bounds(total, batches, batch);
                    assert_eq!(start, cursor, "total={total} batches={batches}");
                    assert!(end >= start);
                    sizes.push(end - start);
                    cursor = end;
                }
                assert_eq!(cursor, total, "batches must cover the sequence");
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "balanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn batch_stage_slice_partitions_every_stage() {
        let (program, spec) = toy();
        let mut prepared = Vec::new();
        for stage in [Stage::Original, Stage::Relaxed] {
            prepared.push((stage, stage_vcs(stage, &program, &spec).unwrap()));
        }
        let total: usize = prepared.iter().map(|(_, vcs)| vcs.len()).sum();
        assert!(total >= 2, "toy program should have several obligations");
        let batches = 2.min(total);
        let mut rebuilt: Vec<Vec<Vc>> = vec![Vec::new(); prepared.len()];
        for batch in 0..batches {
            let (start, end) = batch_bounds(total, batches, batch);
            let slices = batch_stage_slice(&prepared, start, end);
            // Every stage stays present, even when its slice is empty.
            assert_eq!(slices.len(), prepared.len());
            for (i, (stage, vcs)) in slices.into_iter().enumerate() {
                assert_eq!(stage, prepared[i].0);
                rebuilt[i].extend(vcs);
            }
        }
        for (rebuilt_stage, (_, vcs)) in rebuilt.iter().zip(&prepared) {
            assert_eq!(rebuilt_stage.len(), vcs.len());
            for (got, want) in rebuilt_stage.iter().zip(vcs) {
                assert_eq!(got.name, want.name);
            }
        }
    }

    #[test]
    fn worker_batch_jobs_reassemble_to_the_whole_program_verdicts() {
        let (program, spec) = toy();
        let config = Config {
            workers: 1,
            ..Config::default()
        };
        let direct = Verifier::builder()
            .workers(1)
            .build()
            .check(&program, &spec)
            .unwrap();
        let total = direct.original.results.len() + direct.relaxed.results.len();
        assert!(total >= 2);
        let batches = 2;
        let frames = format!(
            "{}\n{}\n{}\n",
            render_config_frame(&config, 1),
            render_job_frame(0, "toy", &program, &spec, 0, batches),
            render_job_frame(1, "toy", &program, &spec, 1, batches),
        );
        let (result, output) = drive_worker(&frames, Fault::None);
        result.unwrap();
        let mut wire_verdicts: Vec<Vec<(Validity, bool)>> = Vec::new();
        for line in output.lines().skip(1) {
            let wire = parse_result_frame(line).unwrap();
            assert!(wire.error.is_none(), "{:?}", wire.error);
            // Both batches report the full stage spectrum.
            assert_eq!(wire.stages.len(), 2);
            for (i, stage) in wire.stages.into_iter().enumerate() {
                if wire_verdicts.len() <= i {
                    wire_verdicts.push(Vec::new());
                }
                wire_verdicts[i].extend(stage.verdicts);
            }
        }
        let direct_stages = [&direct.original, &direct.relaxed];
        for (rebuilt, direct_report) in wire_verdicts.iter().zip(direct_stages) {
            assert_eq!(rebuilt.len(), direct_report.results.len());
            for ((verdict, _), expected) in rebuilt.iter().zip(&direct_report.results) {
                assert_eq!(verdict, &expected.verdict);
            }
        }
    }

    #[test]
    fn worker_rejects_inconsistent_batch_coordinates() {
        let (program, spec) = toy();
        let config = Config {
            workers: 1,
            ..Config::default()
        };
        // Far more batches than the toy program has obligations.
        let frames = format!(
            "{}\n{}\n",
            render_config_frame(&config, 1),
            render_job_frame(0, "toy", &program, &spec, 0, 10_000),
        );
        let (result, output) = drive_worker(&frames, Fault::None);
        result.unwrap();
        let wire = parse_result_frame(output.lines().nth(1).unwrap()).unwrap();
        assert!(wire.error.unwrap().contains("inconsistent"));
    }

    #[test]
    fn prepare_jobs_splits_programs_into_goal_batches() {
        let (program, spec) = toy();
        let entries = vec![("toy".to_string(), &program, &spec)];
        let mut slots: Vec<Option<CorpusEntry>> = vec![None];
        let costs = std::collections::HashMap::new();
        let whole = prepare_jobs(StageSet::default(), &entries, &mut slots, 1, &costs);
        assert_eq!(whole.len(), 1);
        assert_eq!((whole[0].batch, whole[0].batches), (0, 1));
        let total = whole[0].vc_count;
        assert!(total >= 2);

        let mut slots: Vec<Option<CorpusEntry>> = vec![None];
        let split = prepare_jobs(StageSet::default(), &entries, &mut slots, 2, &costs);
        assert_eq!(split.len(), 2, "one program fans out into two jobs");
        let mut ids: Vec<usize> = split.iter().map(|job| job.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1], "wire ids are corpus-unique");
        assert!(split.iter().all(|job| job.slot == 0));
        assert_eq!(split.iter().map(|job| job.vc_count).sum::<usize>(), total);

        // More shards than goals clamps to one goal per batch.
        let mut slots: Vec<Option<CorpusEntry>> = vec![None];
        let fine = prepare_jobs(StageSet::default(), &entries, &mut slots, 10_000, &costs);
        assert_eq!(fine.len(), total);
        assert!(fine.iter().all(|job| job.vc_count == 1));
    }

    #[test]
    fn prepare_jobs_orders_by_observed_cost_once_history_is_complete() {
        let (program, spec) = toy();
        // Two copies of the same program: identical VC counts, so the
        // estimate cannot distinguish them — the measured history must.
        let entries = vec![
            ("fast".to_string(), &program, &spec),
            ("slow".to_string(), &program, &spec),
        ];
        let mut slots: Vec<Option<CorpusEntry>> = vec![None, None];
        let mut costs = std::collections::HashMap::new();
        costs.insert("fast".to_string(), 5u64);
        costs.insert("slow".to_string(), 500u64);
        let jobs = prepare_jobs(StageSet::default(), &entries, &mut slots, 1, &costs);
        assert_eq!(jobs[0].name, "slow", "measured longest-first");
        assert_eq!(jobs[1].name, "fast");

        // Incomplete history falls back to the VC-count estimate with
        // id (corpus-order) tie-breaking.
        costs.remove("fast");
        let mut slots: Vec<Option<CorpusEntry>> = vec![None, None];
        let jobs = prepare_jobs(StageSet::default(), &entries, &mut slots, 1, &costs);
        assert_eq!(jobs[0].name, "fast", "estimate ties break by id");
    }

    #[test]
    fn merge_batch_entries_reassembles_partial_reports() {
        let (program, spec) = toy();
        let entries = vec![("toy".to_string(), &program, &spec)];
        let mut slots: Vec<Option<CorpusEntry>> = vec![None];
        let costs = std::collections::HashMap::new();
        let jobs = prepare_jobs(StageSet::default(), &entries, &mut slots, 2, &costs);
        assert_eq!(jobs.len(), 2);
        let session = Verifier::builder().workers(1).build();
        // Simulate each batch worker-side and rebuild the partial
        // entries exactly as the coordinator does, deliberately merging
        // in reverse arrival order.
        let mut parts = Vec::new();
        for job in jobs.iter().rev() {
            let report = run_batch_job(&session, &program, &spec, job.batch, job.batches).unwrap();
            let frame = render_result_frame(job.id, &report, 7, &[], 0);
            let wire = parse_result_frame(&frame).unwrap();
            let rebuilt = rebuild_report(job, wire.stages, wire.engine).unwrap();
            parts.push((
                job.batch,
                CorpusEntry {
                    name: job.name.clone(),
                    elapsed_ms: wire.elapsed_ms,
                    lint: Vec::new(),
                    outcome: Ok(rebuilt),
                },
            ));
        }
        let merged = merge_batch_entries(parts);
        let direct = Verifier::builder()
            .workers(1)
            .build()
            .check(&program, &spec)
            .unwrap();
        let report = merged.outcome.unwrap();
        assert_eq!(merged.elapsed_ms, 7, "elapsed is the max across batches");
        assert_eq!(report.original.results.len(), direct.original.results.len());
        assert_eq!(report.relaxed.results.len(), direct.relaxed.results.len());
        for (got, want) in report
            .original
            .results
            .iter()
            .chain(&report.relaxed.results)
            .zip(
                direct
                    .original
                    .results
                    .iter()
                    .chain(&direct.relaxed.results),
            )
        {
            assert_eq!(got.vc.name, want.vc.name, "generation order survives");
            assert_eq!(got.verdict, want.verdict);
        }
    }

    #[test]
    fn merge_batch_entries_fails_the_program_on_a_failed_batch() {
        let ok = CorpusEntry {
            name: "p".to_string(),
            elapsed_ms: 3,
            lint: Vec::new(),
            outcome: Ok(AcceptabilityReport {
                stages: StageSet::default(),
                original: Report::default(),
                intermediate: None,
                relaxed: Report::default(),
                engine: EngineStats::default(),
            }),
        };
        let failed = CorpusEntry {
            name: "p".to_string(),
            elapsed_ms: 0,
            lint: Vec::new(),
            outcome: Err(CorpusError::Shard("batch 1 died".to_string())),
        };
        let merged = merge_batch_entries(vec![(0, ok), (1, failed)]);
        let err = merged.outcome.unwrap_err();
        assert!(err.to_string().contains("batch 1 died"), "{err}");
    }

    #[test]
    fn missing_worker_binary_yields_per_program_errors() {
        let (program, spec) = toy();
        let verifier = Verifier::builder()
            .shards(2)
            .shard_worker("/nonexistent/relaxed-shardd")
            .workers(1)
            .build();
        let report = verifier.check_corpus(&[(program, spec)]);
        assert_eq!(report.len(), 1);
        let err = report.entries[0].outcome.as_ref().unwrap_err();
        assert!(matches!(err, CorpusError::Shard(_)), "{err}");
        assert!(err.to_string().contains("failed after"), "{err}");
    }

    #[test]
    fn empty_sharded_corpus_is_a_clean_empty_report() {
        let verifier = Verifier::builder().shards(2).build();
        let report = verifier.check_corpus(&[]);
        assert!(report.is_empty());
        assert!(report.verified());
    }
}
