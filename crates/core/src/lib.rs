//! # relaxed-core
//!
//! The verification framework of Carbin, Kim, Misailovic & Rinard,
//! *“Proving Acceptability Properties of Relaxed Nondeterministic
//! Approximate Programs”* (PLDI 2012), reproduced in Rust.
//!
//! A **relaxed program** extends an ordinary imperative program with
//! `relax (X) st (B)` statements — no-ops in the *original* semantics,
//! nondeterministic reassignments in the *relaxed* semantics. The paper's
//! contribution is a staged, relational verification methodology for the
//! *acceptability properties* (integrity + accuracy) of such programs:
//!
//! 1. **`⊢o` — axiomatic original semantics** (Fig. 7): a standard Hoare
//!    logic for the original program. Verifying it gives *Original
//!    Progress Modulo Assumptions* (Lemma 2): no original execution goes
//!    `wr`.
//! 2. **`⊢r` — axiomatic relaxed semantics** (Fig. 8): a relational Hoare
//!    logic over lockstep pairs of original/relaxed executions, with
//!    `relate` assertions, relational transfer for `assert`/`assume`, and
//!    the **diverge** rule for control flow the relaxation desynchronizes.
//!    Verifying it gives *Soundness of Relational Assertions* (Theorem 6)
//!    and *Relative Relaxed Progress* (Theorem 7).
//! 3. **`⊢i` — axiomatic intermediate semantics** (Fig. 9): the unary
//!    logic the diverge rule uses for the relaxed execution on its own
//!    (Lemma 4).
//!
//! Together the stages give *Relaxed Progress* (Theorem 8) and its
//! debuggability corollary (Corollary 9): an error in the relaxed program
//! implies a violated assumption reproducible in the original program.
//!
//! ## Crate layout
//!
//! * [`api`] — the unified [`Verifier`] session API: typed configuration,
//!   staged pipelines, and corpus-scale batch verification;
//! * [`vcgen`] — weakest-precondition VC generation for all three logics,
//!   driven by in-program annotations (`invariant`, `rinvariant`,
//!   `diverge` contracts);
//! * [`rules`] — the paper's proof rules as explicit derivation trees with
//!   a rule-by-rule checker (the analogue of the paper's Coq artifact);
//! * [`cache`] — the persistent on-disk verdict store (structural goal
//!   keys, config fingerprinting, corruption-tolerant JSON-lines log);
//! * [`depmap`] — the goal→program-fragment dependency map recorded at
//!   vcgen time, the basis of incremental re-verification: after an
//!   edit, only goals whose supporting fragments changed are re-proved;
//! * [`shard`] — sharded multi-process corpus verification: the
//!   transport-agnostic coordinator/worker protocol behind
//!   [`CorpusPolicy::Sharded`], with verdict sharing between worker
//!   processes through the on-disk store;
//! * [`service`] — the networked verification service
//!   (`relaxed-serviced`): a long-running daemon with a warm worker
//!   fleet and a resident verdict cache, serving concurrent corpus
//!   requests over TCP behind [`CorpusPolicy::Service`];
//! * [`telemetry`] — zero-dependency tracing and metrics: RAII spans
//!   drained to Chrome trace-event JSON (`DISCHARGE_TRACE=path.json`)
//!   and a Prometheus-rendered [`MetricsRegistry`];
//! * [`encode`] — lowering of assertion-logic formulas to the
//!   `relaxed-smt` solver;
//! * [`analysis`] — array detection, relaxation-dependence (taint)
//!   analysis, and the spec-coverage lint pass;
//! * [`noninterference`] — automatic `x<o> == x<r>` bridging invariants;
//! * [`prefilter`] — the goal-level static analysis layer: the
//!   abstract-interpretation prefilter and sound hypothesis
//!   normalization/slicing that run in front of the solver;
//! * [`engine`] — the parallel, deduplicating VC discharge engine;
//! * [`verify`] — the theorem-level report types (and the deprecated
//!   free-function drivers).
//!
//! ## Example
//!
//! ```
//! use relaxed_core::{Spec, Verifier};
//! use relaxed_lang::parse_program;
//!
//! // LU-pivot-style bounded-error relaxation (paper §5.3, simplified):
//! let program = parse_program(
//!     "original_a = a;
//!      relax (a) st (original_a - e <= a && a <= original_a + e);
//!      relate l1 : a<o> - a<r> <= e<o> && a<r> - a<o> <= e<o>;",
//! )?;
//! let spec = Spec {
//!     pre: relaxed_lang::parse_formula("e >= 0")?,
//!     post: relaxed_lang::Formula::True,
//!     rel_pre: relaxed_lang::parse_rel_formula("a<o> == a<r> && e<o> == e<r> && e<o> >= 0")?,
//!     rel_post: relaxed_lang::RelFormula::True,
//! };
//! let verifier = Verifier::new();
//! let report = verifier.check(&program, &spec)?;
//! assert!(report.relaxed_progress());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
// Library code must not print: route diagnostics through `relaxed_core::diag`
// (see README "Observability"). Bin entry points opt out locally.
#![warn(clippy::print_stdout, clippy::print_stderr)]

pub mod analysis;
pub mod api;
pub mod cache;
pub mod depmap;
mod diag;
pub mod encode;
pub mod engine;
pub mod noninterference;
pub mod prefilter;
pub mod rules;
pub mod service;
pub mod shard;
pub mod telemetry;
pub mod vcgen;
pub mod verify;

pub use analysis::{lint, AnalysisWarning, LintCode};
pub use api::{
    CachePolicy, Config, CorpusEntry, CorpusError, CorpusPolicy, CorpusReport, EnvWarning, Stage,
    StageRunner, StageSet, Verifier, VerifierBuilder,
};
pub use cache::{CacheWarning, GoalKey};
pub use engine::{DischargeConfig, DischargeEngine, DischargeOptions, EngineStats};
pub use prefilter::{group_keys, normalize, GroupKeys, NormalizedHypothesis, Prefilter};
pub use service::{Service, ServiceOptions, ServiceStatus};
pub use telemetry::MetricsRegistry;
pub use verify::{AcceptabilityReport, Report, Spec, VcResult};
// The deprecated free-function drivers stay re-exported so existing
// `relaxed_core::verify_acceptability`-style paths keep resolving (with a
// deprecation warning at the use site).
#[allow(deprecated)]
pub use verify::{
    acceptability_vcs, discharge, verify_acceptability, verify_acceptability_with,
    verify_intermediate, verify_intermediate_with, verify_original, verify_original_with,
    verify_relaxed, verify_relaxed_with,
};
