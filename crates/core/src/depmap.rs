//! Goal→program-fragment dependency tracking for incremental
//! re-verification.
//!
//! At production scale a corpus is *edited*, not re-created: the paper's
//! §5 workflow is a developer iterating on `relax`/`assume` specs and
//! re-running acceptability verification. The persistent verdict cache
//! ([`crate::cache`]) already gives goal *identity* across processes;
//! this module adds *invalidation precision*: every [`Vc`] records the
//! [`fragment_id`]s of the program statements and spec formulas its
//! formula was built from (attached at vcgen time by
//! [`crate::vcgen`]), and a [`DepMap`] persists, per program, the
//! goal-key/fragment pairs of the last verified revision.
//!
//! Two facts make the map useful:
//!
//! * **Replay**: if an incoming program's [`program_hash`] matches its
//!   stored [`ProgramDeps`], *no* fragment changed, so every stored goal
//!   key is current and the whole program replays from the verdict cache
//!   without re-running vcgen or the solver
//!   (`DischargeEngine::replay`).
//! * **Blame**: when fragments did change, a goal whose `deps` are
//!   disjoint from the changed set is textually unaffected — its formula
//!   (and therefore its α-invariant goal key) is unchanged, and the
//!   verdict cache answers it without solver work. Only goals that
//!   [`dirty_goals`] selects can require fresh proofs, and each of them
//!   names the edited fragment in its `deps` (the provenance the
//!   `edit-reverify` CI job asserts).
//!
//! The map is **stage-sensitive** exactly where the paper's logics are:
//! in `⊢o` a `relax (X) st e` is `assert e` over an unchanged state
//! (Fig. 7), so its fragment covers only the predicate — editing the
//! target list `X` invalidates `⊢r` goals (where the relaxed side havocs
//! `X`) but no `⊢o` goal. `relate` is a skip in `⊢o` and contributes no
//! fragment there at all.
//!
//! # On-disk format
//!
//! A JSON-lines sidecar next to the verdict cache
//! (`<cache_path>.depmap`), following the same conventions: a header
//! line carrying the session [`fingerprint`](crate::cache::fingerprint)
//! (a mismatch — different solver budgets, encoder, or format — fails
//! closed into a cold, empty map: a stale map must never drive a
//! replay), then one line per program, later-wins on duplicates,
//! corruption-tolerant line-by-line loading, and atomic
//! temp-file + rename persists.

use crate::api::Stage;
use crate::cache::{get, json_string, parse_json, GoalKey, Json};
use crate::vcgen::Vc;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the depmap file layout; bumping it invalidates every
/// existing map (the header check fails closed into a cold start).
pub const DEPMAP_FORMAT: u32 = 1;

/// The sidecar path a session's depmap lives at: the verdict-cache path
/// with `.depmap` appended.
pub fn depmap_path(cache_path: &Path) -> PathBuf {
    let mut os = cache_path.as_os_str().to_os_string();
    os.push(".depmap");
    PathBuf::from(os)
}

// ---------------------------------------------------------------------
// Fragment identity
// ---------------------------------------------------------------------

/// FNV-1a over the bytes — a stable, dependency-free 64-bit content
/// hash. Not `DefaultHasher`, whose output is explicitly unstable across
/// releases and would silently invalidate every stored map.
fn fnv64(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The identity of one program fragment: `kind` names the syntactic role
/// (`stmt`, `cond`, `inv`, `relax-pred`, `pre`, `post`, …) and the hash
/// covers the fragment's pretty-printed text. Two fragments with the
/// same text in different roles get distinct ids, so e.g. promoting a
/// loop condition into an assert reads as a change.
pub fn fragment_id(kind: &str, text: &str) -> String {
    format!("{kind}:{:016x}", fnv64(text))
}

/// Streams [`fmt::Display`] output straight into an FNV-1a state — the
/// whole-revision hash runs on every corpus entry of every incremental
/// re-verification, so it must not allocate a pretty-printed copy of
/// the program per call.
struct FnvWriter(u64);

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for byte in s.as_bytes() {
            self.0 ^= u64::from(*byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(())
    }
}

/// The whole-revision hash of one `(program, spec)` pair — matching
/// hashes mean *no* fragment changed and the stored goal set replays
/// verbatim.
pub fn program_hash(program: &relaxed_lang::Program, spec: &crate::verify::Spec) -> String {
    use std::fmt::Write;
    let mut w = FnvWriter(0xcbf2_9ce4_8422_2325);
    write!(
        w,
        "{}\u{0}{}\u{0}{}\u{0}{}\u{0}{}",
        program, spec.pre, spec.post, spec.rel_pre, spec.rel_post
    )
    .expect("hash writer never fails");
    format!("rev:{:016x}", w.0)
}

// ---------------------------------------------------------------------
// The map
// ---------------------------------------------------------------------

/// One goal of a stored program revision: enough provenance to rebuild
/// its report row ([`stage`](GoalDep::stage), [`name`](GoalDep::name),
/// [`context`](GoalDep::context)), the verdict-cache
/// [`key`](GoalDep::key) to replay it from, and the fragment
/// [`deps`](GoalDep::deps) that blame edits to it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GoalDep {
    /// The pipeline stage the goal belongs to.
    pub stage: Stage,
    /// The obligation name (`precondition-establishes-wp`, …).
    pub name: String,
    /// The obligation's program context (`entry`, `body/2`, …).
    pub context: String,
    /// The α-invariant verdict-cache key of the encoded goal.
    pub key: GoalKey,
    /// Sorted, deduplicated [`fragment_id`]s of every fragment the
    /// goal's formula was built from.
    pub deps: Vec<String>,
}

/// The stored goal set of one program revision.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgramDeps {
    /// [`program_hash`] of the revision the goals were recorded for.
    pub hash: String,
    /// Every goal of every stage the session ran, in pipeline order.
    pub goals: Vec<GoalDep>,
}

/// The goal→fragment dependency map of a corpus: per program name, the
/// last verified revision's [`ProgramDeps`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DepMap {
    /// Stored revisions, keyed by corpus program name.
    pub programs: BTreeMap<String, ProgramDeps>,
}

impl DepMap {
    /// The stored revision for `name`, if any.
    pub fn program(&self, name: &str) -> Option<&ProgramDeps> {
        self.programs.get(name)
    }

    /// Records (or replaces) a program's revision.
    pub fn record(&mut self, name: &str, deps: ProgramDeps) {
        self.programs.insert(name.to_string(), deps);
    }
}

/// The fragments whose membership differs between a stored revision and
/// a fresh goal set — the symmetric difference of the two dep unions.
/// Empty exactly when the edit touched no fragment either revision's
/// goals depend on (e.g. a pure statement reorder).
pub fn changed_fragments(old: &ProgramDeps, fresh: &[GoalDep]) -> BTreeSet<String> {
    let old_frags: BTreeSet<&str> = old
        .goals
        .iter()
        .flat_map(|g| g.deps.iter().map(String::as_str))
        .collect();
    let new_frags: BTreeSet<&str> = fresh
        .iter()
        .flat_map(|g| g.deps.iter().map(String::as_str))
        .collect();
    old_frags
        .symmetric_difference(&new_frags)
        .map(|s| (*s).to_string())
        .collect()
}

/// Indices (into `fresh`) of the goals an edit can force back to the
/// solver: goals whose key the stored revision does not already hold.
/// Every other goal's formula is unchanged and replays from the verdict
/// cache. Deduplicated by key — the engine solves each distinct goal
/// once.
pub fn dirty_goals(old: &ProgramDeps, fresh: &[GoalDep]) -> Vec<usize> {
    let known: HashSet<&GoalKey> = old.goals.iter().map(|g| &g.key).collect();
    let mut seen: HashSet<&GoalKey> = HashSet::new();
    fresh
        .iter()
        .enumerate()
        .filter(|(_, g)| !known.contains(&g.key) && seen.insert(&g.key))
        .map(|(i, _)| i)
        .collect()
}

/// Builds the [`GoalDep`] rows of one program's staged obligations by
/// encoding each VC to its verdict-cache key (the same
/// [`encode_goal`](crate::engine::encode_goal) the discharge engine
/// uses, so the keys are replay-exact).
pub fn goal_deps(stage_vcs: &[(Stage, Vec<Vc>)]) -> Vec<GoalDep> {
    let mut out = Vec::new();
    for (stage, vcs) in stage_vcs {
        for vc in vcs {
            out.push(GoalDep {
                stage: *stage,
                name: vc.name.clone(),
                context: vc.context.clone(),
                key: GoalKey::of(&crate::engine::encode_goal(vc)),
                deps: vc.deps.clone(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------

fn stage_tag(stage: Stage) -> &'static str {
    match stage {
        Stage::Original => "original",
        Stage::Intermediate => "intermediate",
        Stage::Relaxed => "relaxed",
    }
}

fn stage_from_tag(tag: &str) -> Result<Stage, String> {
    match tag {
        "original" => Ok(Stage::Original),
        "intermediate" => Ok(Stage::Intermediate),
        "relaxed" => Ok(Stage::Relaxed),
        other => Err(format!("unknown stage {other:?}")),
    }
}

fn render_header(fingerprint: &str) -> String {
    format!(
        "{{\"format\":{DEPMAP_FORMAT},\"kind\":\"depmap\",\"fingerprint\":{}}}\n",
        json_string(fingerprint)
    )
}

fn render_program_line(name: &str, deps: &ProgramDeps) -> String {
    let mut out = format!(
        "{{\"program\":{},\"hash\":{},\"goals\":[",
        json_string(name),
        json_string(&deps.hash)
    );
    for (i, goal) in deps.goals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"stage\":\"{}\",\"name\":{},\"context\":{},\"key\":{},\"deps\":[{}]}}",
            stage_tag(goal.stage),
            json_string(&goal.name),
            json_string(&goal.context),
            json_string(goal.key.as_str()),
            goal.deps
                .iter()
                .map(|d| json_string(d))
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    out.push_str("]}\n");
    out
}

fn field_str<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a str, String> {
    match get(fields, key) {
        Some(Json::Str(s)) => Ok(s),
        Some(_) => Err(format!("non-string `{key}`")),
        None => Err(format!("missing `{key}`")),
    }
}

fn parse_program_line(line: &str) -> Result<(String, ProgramDeps), String> {
    let record = parse_json(line)?;
    let fields = record.as_object()?;
    let name = field_str(fields, "program")?.to_string();
    let hash = field_str(fields, "hash")?.to_string();
    let mut goals = Vec::new();
    for item in get(fields, "goals").ok_or("missing `goals`")?.as_array()? {
        let goal_fields = item.as_object()?;
        let mut deps = Vec::new();
        for dep in get(goal_fields, "deps")
            .ok_or("missing `deps`")?
            .as_array()?
        {
            match dep {
                Json::Str(s) => deps.push(s.clone()),
                _ => return Err("non-string dep".to_string()),
            }
        }
        goals.push(GoalDep {
            stage: stage_from_tag(field_str(goal_fields, "stage")?)?,
            name: field_str(goal_fields, "name")?.to_string(),
            context: field_str(goal_fields, "context")?.to_string(),
            key: GoalKey::parse(field_str(goal_fields, "key")?),
            deps,
        });
    }
    Ok((name, ProgramDeps { hash, goals }))
}

/// Loads the depmap at `path`, keeping it only when the header carries
/// exactly this session's `fingerprint`. A missing file, a bad or
/// mismatched header (including a verdict-cache fingerprint change — new
/// budgets, encoder, or solver), or a wrong `kind` all fail closed into
/// an empty map: **a stale map must never drive a replay**. Individually
/// corrupt program lines are skipped (later lines win on duplicate
/// names); every warning is returned for diagnostics.
pub fn load(path: &Path, fingerprint: &str) -> (DepMap, Vec<String>) {
    let mut map = DepMap::default();
    let mut warnings = Vec::new();
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return (map, warnings),
        Err(e) => {
            warnings.push(format!("depmap unreadable ({e}); starting cold"));
            return (map, warnings);
        }
    };
    let mut lines = text.lines().enumerate();
    let header_ok = match lines.next() {
        Some((_, header)) => check_header(header, fingerprint),
        None => Err("empty file".to_string()),
    };
    if let Err(reason) = header_ok {
        warnings.push(format!(
            "depmap {}: {reason}; starting cold",
            path.display()
        ));
        return (map, warnings);
    }
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        match parse_program_line(line) {
            Ok((name, deps)) => {
                map.programs.insert(name, deps);
            }
            Err(reason) => warnings.push(format!("depmap line {}: {reason}; skipped", i + 1)),
        }
    }
    (map, warnings)
}

fn check_header(header: &str, fingerprint: &str) -> Result<(), String> {
    let record = parse_json(header).map_err(|e| format!("bad header: {e}"))?;
    let fields = record.as_object().map_err(|e| format!("bad header: {e}"))?;
    if field_str(fields, "kind")? != "depmap" {
        return Err("not a depmap file".to_string());
    }
    match get(fields, "format") {
        Some(Json::Int(n)) if *n == i128::from(DEPMAP_FORMAT) => {}
        Some(Json::Int(n)) => return Err(format!("format {n} (session speaks {DEPMAP_FORMAT})")),
        _ => return Err("missing `format`".to_string()),
    }
    let file_fingerprint = field_str(fields, "fingerprint")?;
    if file_fingerprint != fingerprint {
        return Err(format!(
            "fingerprint mismatch (file {file_fingerprint:?}, session {fingerprint:?})"
        ));
    }
    Ok(())
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Atomically rewrites the depmap at `path` (unique temp file + rename,
/// like the verdict cache's compacting persist — concurrent sessions may
/// race but can never corrupt the file).
///
/// # Errors
///
/// Propagates filesystem errors; callers degrade to a warning (a session
/// that cannot persist its map simply starts cold next time).
pub fn persist(path: &Path, fingerprint: &str, map: &DepMap) -> std::io::Result<()> {
    let mut body = render_header(fingerprint);
    for (name, deps) in &map.programs {
        body.push_str(&render_program_line(name, deps));
    }
    let temp = path.with_extension(format!(
        "tmp-{}-{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut file = std::fs::File::create(&temp)?;
        file.write_all_bytes(body.as_bytes())?;
        std::fs::rename(&temp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&temp);
    }
    result
}

/// Tiny shim so the persist closure reads as one pipeline (`File` has
/// `write_all` via `io::Write`; the trait import stays local).
trait WriteAllBytes {
    fn write_all_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()>;
}

impl WriteAllBytes for std::fs::File {
    fn write_all_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        use std::io::Write;
        self.write_all(bytes)?;
        self.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "relaxed-depmap-test-{tag}-{}-{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        path
    }

    fn sample_map() -> DepMap {
        let mut map = DepMap::default();
        map.record(
            "swish",
            ProgramDeps {
                hash: "rev:00112233".to_string(),
                goals: vec![GoalDep {
                    stage: Stage::Original,
                    name: "precondition-establishes-wp".to_string(),
                    context: "entry".to_string(),
                    key: GoalKey::parse("(valid true)"),
                    deps: vec![
                        fragment_id("pre", "x >= 0"),
                        fragment_id("stmt", "x = x + 1;"),
                    ],
                }],
            },
        );
        map
    }

    #[test]
    fn fragment_ids_are_stable_and_role_sensitive() {
        assert_eq!(fragment_id("stmt", "x = 1;"), fragment_id("stmt", "x = 1;"));
        assert_ne!(fragment_id("stmt", "x = 1;"), fragment_id("stmt", "x = 2;"));
        assert_ne!(fragment_id("cond", "x < n"), fragment_id("inv", "x < n"));
    }

    #[test]
    fn round_trips_through_disk() {
        let path = temp_path("roundtrip");
        let map = sample_map();
        persist(&path, "fp-1", &map).unwrap();
        let (loaded, warnings) = load(&path, "fp-1");
        assert_eq!(loaded, map);
        assert!(warnings.is_empty(), "{warnings:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_fails_closed_into_a_cold_map() {
        let path = temp_path("mismatch");
        persist(&path, "fp-old", &sample_map()).unwrap();
        let (loaded, warnings) = load(&path, "fp-new");
        assert!(loaded.programs.is_empty(), "stale map must not load");
        assert!(
            warnings.iter().any(|w| w.contains("fingerprint mismatch")),
            "{warnings:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_clean_cold_start() {
        let (loaded, warnings) = load(Path::new("/nonexistent/depmap"), "fp");
        assert!(loaded.programs.is_empty());
        assert!(warnings.is_empty());
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let path = temp_path("corrupt");
        persist(&path, "fp", &sample_map()).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("@@ not json @@\n");
        std::fs::write(&path, text).unwrap();
        let (loaded, warnings) = load(&path, "fp");
        assert_eq!(loaded.programs.len(), 1);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dirty_goals_selects_new_keys_once() {
        let old = ProgramDeps {
            hash: "rev:a".to_string(),
            goals: vec![GoalDep {
                stage: Stage::Original,
                name: "g0".to_string(),
                context: "entry".to_string(),
                key: GoalKey::parse("(k0)"),
                deps: vec!["pre:1".to_string()],
            }],
        };
        let fresh = vec![
            GoalDep {
                stage: Stage::Original,
                name: "g0".to_string(),
                context: "entry".to_string(),
                key: GoalKey::parse("(k0)"),
                deps: vec!["pre:1".to_string()],
            },
            GoalDep {
                stage: Stage::Relaxed,
                name: "g1".to_string(),
                context: "body/1".to_string(),
                key: GoalKey::parse("(k1)"),
                deps: vec!["stmt:2".to_string()],
            },
            GoalDep {
                stage: Stage::Relaxed,
                name: "g1-dup".to_string(),
                context: "body/2".to_string(),
                key: GoalKey::parse("(k1)"),
                deps: vec!["stmt:2".to_string()],
            },
        ];
        assert_eq!(dirty_goals(&old, &fresh), vec![1]);
        let changed = changed_fragments(&old, &fresh);
        assert!(changed.contains("stmt:2"), "{changed:?}");
        assert!(!changed.contains("pre:1"), "{changed:?}");
    }

    #[test]
    fn depmap_path_is_a_sidecar_of_the_cache() {
        assert_eq!(
            depmap_path(Path::new("/tmp/verdicts.jsonl")),
            PathBuf::from("/tmp/verdicts.jsonl.depmap")
        );
    }
}
