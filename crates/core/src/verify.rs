//! Verification drivers: discharge generated VCs with the SMT solver and
//! assemble the paper's end-to-end guarantees.
//!
//! [`verify_original`] plays `⊢o` (and with it Lemma 2, *Original Progress
//! Modulo Assumptions*); [`verify_relaxed`] plays `⊢r` (Theorem 6,
//! *Soundness of Relational Assertions*, and Theorem 7, *Relative Relaxed
//! Progress*); [`verify_acceptability`] combines them into Theorem 8
//! (*Relaxed Progress*) and Corollary 9 (*Relaxed Progress Modulo Original
//! Assumptions*).

use crate::analysis::{array_vars, formula_array_vars, rel_formula_array_vars};
use crate::engine::{DischargeEngine, EngineStats};
use crate::vcgen::{vcs_relaxed, vcs_unary, UnaryLogic, Vc, VcgenError};
use relaxed_lang::{Formula, Program, RelFormula};
use relaxed_smt::{SolverStats, Validity};
use std::fmt;

/// The verdict for one VC.
#[derive(Clone, Debug)]
pub struct VcResult {
    /// The obligation.
    pub vc: Vc,
    /// The solver's verdict on its validity.
    pub verdict: Validity,
    /// Solver statistics for this obligation (zeroed when the verdict
    /// came from the engine's cache).
    pub stats: SolverStats,
    /// Whether the verdict was reused from a structurally identical
    /// obligation rather than solved afresh.
    pub cached: bool,
}

impl VcResult {
    /// Whether the obligation was proved.
    pub fn proved(&self) -> bool {
        self.verdict.is_valid()
    }
}

/// The outcome of one verification run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Per-VC results, in generation order.
    pub results: Vec<VcResult>,
    /// Solver statistics accumulated over the run (freshly solved goals
    /// only; cached verdicts cost no solver work).
    pub stats: SolverStats,
    /// Cache and worker statistics for this discharge call.
    pub engine: EngineStats,
}

impl Report {
    /// Whether every VC was proved.
    pub fn verified(&self) -> bool {
        self.results.iter().all(VcResult::proved)
    }

    /// The VCs that failed (invalid or unknown).
    pub fn failures(&self) -> impl Iterator<Item = &VcResult> {
        self.results.iter().filter(|r| !r.proved())
    }

    /// Number of VCs.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether no VCs were generated.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let proved = self.results.iter().filter(|r| r.proved()).count();
        writeln!(f, "{proved}/{} VCs proved", self.results.len())?;
        for r in self.failures() {
            writeln!(f, "  FAILED {} — {:?}", r.vc, kind_of(&r.verdict))?;
        }
        Ok(())
    }
}

fn kind_of(v: &Validity) -> &'static str {
    match v {
        Validity::Valid => "valid",
        Validity::Invalid(_) => "counterexample",
        Validity::Unknown(_) => "unknown",
    }
}

/// Discharges a VC list through a fresh [`DischargeEngine`] configured
/// from the environment (see
/// [`DischargeConfig::from_env`](crate::engine::DischargeConfig::from_env)).
///
/// Use [`DischargeEngine::discharge`] directly to share a verdict cache
/// across several calls.
pub fn discharge(vcs: Vec<Vc>) -> Report {
    DischargeEngine::from_env().discharge(vcs)
}

/// The `⊢o` obligations of `{pre} program {post}`.
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
pub fn original_vcs(
    program: &Program,
    pre: &Formula,
    post: &Formula,
) -> Result<Vec<Vc>, VcgenError> {
    unary_stage_vcs(UnaryLogic::Original, program, pre, post)
}

/// The `⊢i` obligations of `{pre} program {post}`.
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations or
/// contains `relate` statements.
pub fn intermediate_vcs(
    program: &Program,
    pre: &Formula,
    post: &Formula,
) -> Result<Vec<Vc>, VcgenError> {
    unary_stage_vcs(UnaryLogic::Intermediate, program, pre, post)
}

fn unary_stage_vcs(
    logic: UnaryLogic,
    program: &Program,
    pre: &Formula,
    post: &Formula,
) -> Result<Vec<Vc>, VcgenError> {
    let mut arrays = array_vars(program.body());
    arrays.extend(formula_array_vars(pre));
    arrays.extend(formula_array_vars(post));
    vcs_unary(logic, program.body(), pre, post, &arrays)
}

/// The `⊢r` obligations of `{rel_pre} program {rel_post}`.
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
pub fn relaxed_vcs(
    program: &Program,
    rel_pre: &RelFormula,
    rel_post: &RelFormula,
) -> Result<Vec<Vc>, VcgenError> {
    let mut arrays = array_vars(program.body());
    arrays.extend(rel_formula_array_vars(rel_pre));
    arrays.extend(rel_formula_array_vars(rel_post));
    vcs_relaxed(program.body(), rel_pre, rel_post, &arrays)
}

/// The combined `⊢o` and `⊢r` obligations of `spec`, in the order the
/// staged pipeline discharges them.
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
pub fn acceptability_vcs(program: &Program, spec: &Spec) -> Result<Vec<Vc>, VcgenError> {
    let mut vcs = original_vcs(program, &spec.pre, &spec.post)?;
    vcs.extend(relaxed_vcs(program, &spec.rel_pre, &spec.rel_post)?);
    Ok(vcs)
}

/// Verifies `⊢o {pre} program {post}` — the axiomatic original semantics.
///
/// A verified report gives Lemma 2: no original execution from a state
/// satisfying `pre` terminates in `wr` (it may still terminate in `ba`).
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
pub fn verify_original(
    program: &Program,
    pre: &Formula,
    post: &Formula,
) -> Result<Report, VcgenError> {
    verify_original_with(program, pre, post, &DischargeEngine::from_env())
}

/// [`verify_original`] on a caller-provided engine (shared verdict cache).
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
pub fn verify_original_with(
    program: &Program,
    pre: &Formula,
    post: &Formula,
    engine: &DischargeEngine,
) -> Result<Report, VcgenError> {
    Ok(engine.discharge(original_vcs(program, pre, post)?))
}

/// Verifies `⊢i {pre} program {post}` — the axiomatic intermediate
/// semantics (Lemma 4: relaxed executions free of both `wr` and `ba`).
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations or
/// contains `relate` statements.
pub fn verify_intermediate(
    program: &Program,
    pre: &Formula,
    post: &Formula,
) -> Result<Report, VcgenError> {
    verify_intermediate_with(program, pre, post, &DischargeEngine::from_env())
}

/// [`verify_intermediate`] on a caller-provided engine (shared verdict
/// cache).
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations or
/// contains `relate` statements.
pub fn verify_intermediate_with(
    program: &Program,
    pre: &Formula,
    post: &Formula,
    engine: &DischargeEngine,
) -> Result<Report, VcgenError> {
    Ok(engine.discharge(intermediate_vcs(program, pre, post)?))
}

/// Verifies `⊢r {rel_pre} program {rel_post}` — the axiomatic relaxed
/// semantics.
///
/// A verified report gives Theorem 6 (all executed `relate` statements
/// hold between paired executions) and Theorem 7 (error-free original
/// executions imply error-free relaxed executions).
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
pub fn verify_relaxed(
    program: &Program,
    rel_pre: &RelFormula,
    rel_post: &RelFormula,
) -> Result<Report, VcgenError> {
    verify_relaxed_with(program, rel_pre, rel_post, &DischargeEngine::from_env())
}

/// [`verify_relaxed`] on a caller-provided engine (shared verdict cache).
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
pub fn verify_relaxed_with(
    program: &Program,
    rel_pre: &RelFormula,
    rel_post: &RelFormula,
    engine: &DischargeEngine,
) -> Result<Report, VcgenError> {
    Ok(engine.discharge(relaxed_vcs(program, rel_pre, rel_post)?))
}

/// The full acceptability specification of a relaxed program.
#[derive(Clone, Debug)]
pub struct Spec {
    /// Unary precondition for the original proof.
    pub pre: Formula,
    /// Unary postcondition for the original proof.
    pub post: Formula,
    /// Relational precondition (typically `initial_sync`).
    pub rel_pre: RelFormula,
    /// Relational postcondition.
    pub rel_post: RelFormula,
}

impl Spec {
    /// A spec with trivial postconditions and the canonical synced start.
    pub fn synced(program: &Program) -> Spec {
        Spec {
            pre: Formula::True,
            post: Formula::True,
            rel_pre: crate::noninterference::initial_sync(program),
            rel_post: RelFormula::True,
        }
    }
}

/// The combined result of the staged verification (§1.2): first `⊢o`,
/// then `⊢r`.
#[derive(Clone, Debug)]
pub struct AcceptabilityReport {
    /// The `⊢o` report.
    pub original: Report,
    /// The `⊢r` report.
    pub relaxed: Report,
    /// Engine activity over both stages of *this* verification (deltas,
    /// so a shared engine's history does not leak in). The `⊢r` stage's
    /// diverge rule re-proves many `⊢o` goals, so sharing one engine
    /// across the stages turns those into cache hits; `unique_goals`
    /// counts the goals this verification newly added to the cache.
    pub engine: EngineStats,
}

impl AcceptabilityReport {
    /// Lemma 2 — *Original Progress Modulo Assumptions*: no original
    /// execution evaluates to `wr`.
    pub fn original_progress(&self) -> bool {
        self.original.verified()
    }

    /// Theorems 6 and 7 — *Soundness of Relational Assertions* and
    /// *Relative Relaxed Progress*: paired executions satisfy every
    /// `relate`, and error-free original runs make relaxed runs
    /// error-free.
    pub fn relative_relaxed_progress(&self) -> bool {
        self.relaxed.verified()
    }

    /// Theorem 8 — *Relaxed Progress*: with both proofs in hand, if
    /// original executions terminate without violating an assumption, no
    /// relaxed execution errs.
    pub fn relaxed_progress(&self) -> bool {
        self.original_progress() && self.relative_relaxed_progress()
    }

    /// Corollary 9 — *Relaxed Progress Modulo Original Assumptions*: any
    /// error in a relaxed execution corresponds to a violated assumption
    /// reproducible in the original program.
    pub fn debuggability(&self) -> bool {
        self.relaxed_progress()
    }
}

impl fmt::Display for AcceptabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "⊢o (original semantics): {}", self.original)?;
        writeln!(f, "⊢r (relaxed semantics): {}", self.relaxed)?;
        writeln!(
            f,
            "Original Progress Modulo Assumptions (Lemma 2): {}",
            self.original_progress()
        )?;
        writeln!(
            f,
            "Relative Relaxed Progress (Theorem 7) + Relational Assertions (Theorem 6): {}",
            self.relative_relaxed_progress()
        )?;
        writeln!(
            f,
            "Relaxed Progress (Theorem 8): {}",
            self.relaxed_progress()
        )
    }
}

/// Runs the paper's staged verification methodology end to end.
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
pub fn verify_acceptability(
    program: &Program,
    spec: &Spec,
) -> Result<AcceptabilityReport, VcgenError> {
    verify_acceptability_with(program, spec, &DischargeEngine::from_env())
}

/// [`verify_acceptability`] on a caller-provided engine: both stages share
/// the engine's verdict cache, so obligations the `⊢r` diverge rule
/// re-proves from the `⊢o` stage are answered without solver work.
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
pub fn verify_acceptability_with(
    program: &Program,
    spec: &Spec,
    engine: &DischargeEngine,
) -> Result<AcceptabilityReport, VcgenError> {
    let before = engine.stats();
    let original = verify_original_with(program, &spec.pre, &spec.post, engine)?;
    let relaxed = verify_relaxed_with(program, &spec.rel_pre, &spec.rel_post, engine)?;
    let after = engine.stats();
    // Report this verification's activity, not the engine's lifetime
    // totals: the engine may be shared across many verifications.
    let engine_stats = EngineStats {
        cache_hits: after.cache_hits - before.cache_hits,
        cache_misses: after.cache_misses - before.cache_misses,
        unique_goals: after.unique_goals - before.unique_goals,
        workers: after.workers,
    };
    Ok(AcceptabilityReport {
        original,
        relaxed,
        engine: engine_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxed_lang::{parse_formula, parse_program, parse_rel_formula};

    #[test]
    fn quickstart_program_verifies_end_to_end() {
        let program = parse_program(
            "x0 = x;
             relax (x) st (x0 <= x && x <= x0 + 2);
             relate l1 : x<o> <= x<r> && x<r> - x<o> <= 2;",
        )
        .unwrap();
        let spec = Spec {
            pre: Formula::True,
            post: Formula::True,
            rel_pre: parse_rel_formula("x<o> == x<r>").unwrap(),
            rel_post: RelFormula::True,
        };
        let report = verify_acceptability(&program, &spec).unwrap();
        assert!(report.relaxed_progress(), "{report}");
    }

    #[test]
    fn broken_relate_fails_relational_stage_only() {
        let program = parse_program(
            "x0 = x;
             relax (x) st (x0 <= x && x <= x0 + 2);
             relate l1 : x<r> <= x<o>;",
        )
        .unwrap();
        let spec = Spec {
            pre: Formula::True,
            post: Formula::True,
            rel_pre: parse_rel_formula("x<o> == x<r>").unwrap(),
            rel_post: RelFormula::True,
        };
        let report = verify_acceptability(&program, &spec).unwrap();
        assert!(report.original_progress());
        assert!(!report.relative_relaxed_progress());
        assert!(!report.relaxed_progress());
    }

    #[test]
    fn original_assert_violation_fails_first_stage() {
        let program = parse_program("x = 1; assert x == 2;").unwrap();
        let report = verify_original(&program, &Formula::True, &Formula::True).unwrap();
        assert!(!report.verified());
        assert_eq!(report.failures().count(), 1);
    }

    #[test]
    fn assume_is_free_in_original_verification() {
        let program = parse_program("assume x >= 10; assert x >= 10;").unwrap();
        let report = verify_original(&program, &Formula::True, &Formula::True).unwrap();
        assert!(report.verified());
    }

    #[test]
    fn postcondition_is_checked() {
        let program = parse_program("y = x + 1;").unwrap();
        let pre = parse_formula("x >= 0").unwrap();
        let post_good = parse_formula("y >= 1").unwrap();
        let post_bad = parse_formula("y >= 2").unwrap();
        assert!(verify_original(&program, &pre, &post_good)
            .unwrap()
            .verified());
        assert!(!verify_original(&program, &pre, &post_bad)
            .unwrap()
            .verified());
    }

    #[test]
    fn report_display_mentions_failures() {
        let program = parse_program("assert false;").unwrap();
        let report = verify_original(&program, &Formula::True, &Formula::True).unwrap();
        let text = report.to_string();
        assert!(text.contains("FAILED"), "{text}");
    }
}
