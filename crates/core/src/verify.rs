//! Report types for the staged verification pipeline, plus the legacy
//! free-function drivers (deprecated in favor of the
//! [`Verifier`] session API).
//!
//! The `⊢o` stage plays Lemma 2 (*Original Progress Modulo Assumptions*);
//! the `⊢r` stage plays Theorem 6 (*Soundness of Relational Assertions*)
//! and Theorem 7 (*Relative Relaxed Progress*); together they give
//! Theorem 8 (*Relaxed Progress*) and Corollary 9 (*Relaxed Progress
//! Modulo Original Assumptions*). Run the pipeline with
//! [`Verifier::check`](crate::api::Verifier::check), or one stage at a
//! time with [`Verifier::stage`](crate::api::Verifier::stage).

use crate::analysis::{array_vars, formula_array_vars, rel_formula_array_vars};
use crate::api::{Stage, StageSet, Verifier};
use crate::engine::{DischargeEngine, DischargeOptions, EngineStats};
use crate::vcgen::{vcs_relaxed, vcs_unary, UnaryLogic, Vc, VcgenError};
use relaxed_lang::{Formula, Program, RelFormula};
use relaxed_smt::{SolverStats, Validity};
use std::fmt;

/// The verdict for one VC.
#[derive(Clone, Debug)]
pub struct VcResult {
    /// The obligation.
    pub vc: Vc,
    /// The solver's verdict on its validity.
    pub verdict: Validity,
    /// Solver statistics for this obligation (zeroed when the verdict
    /// came from the engine's cache).
    pub stats: SolverStats,
    /// Whether the verdict was reused from a structurally identical
    /// obligation rather than solved afresh.
    pub cached: bool,
}

impl VcResult {
    /// Whether the obligation was proved.
    pub fn proved(&self) -> bool {
        self.verdict.is_valid()
    }
}

/// The outcome of one verification run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Per-VC results, in generation order.
    pub results: Vec<VcResult>,
    /// Solver statistics accumulated over the run (freshly solved goals
    /// only; cached verdicts cost no solver work).
    pub stats: SolverStats,
    /// Cache and worker statistics for this discharge call.
    pub engine: EngineStats,
}

impl Report {
    /// Whether every VC was proved.
    pub fn verified(&self) -> bool {
        self.results.iter().all(VcResult::proved)
    }

    /// The VCs that failed (invalid or unknown).
    pub fn failures(&self) -> impl Iterator<Item = &VcResult> {
        self.results.iter().filter(|r| !r.proved())
    }

    /// Number of VCs.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether no VCs were generated.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Appends `other`'s per-VC results and folds its statistics in,
    /// through the one [`SolverStats::absorb`] /
    /// [`EngineStats::absorb`](crate::engine::EngineStats::absorb)
    /// aggregation path — so multi-stage and multi-program callers never
    /// hand-sum stat fields (and silently drop one).
    pub fn merge(&mut self, other: Report) {
        self.results.extend(other.results);
        self.stats.absorb(&other.stats);
        self.engine.absorb(&other.engine);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let proved = self.results.iter().filter(|r| r.proved()).count();
        writeln!(f, "{proved}/{} VCs proved", self.results.len())?;
        for r in self.failures() {
            writeln!(f, "  FAILED {} — {:?}", r.vc, kind_of(&r.verdict))?;
        }
        Ok(())
    }
}

fn kind_of(v: &Validity) -> &'static str {
    match v {
        Validity::Valid => "valid",
        Validity::Invalid(_) => "counterexample",
        Validity::Unknown(_) => "unknown",
    }
}

/// A throwaway session configured exactly as the legacy entry points
/// were: defaults plus the environment opt-in layer. Malformed
/// `DISCHARGE_*` values and verdict-cache load problems are reported to
/// stderr once per process through the quiet-aware diagnostics channel
/// (silenced entirely by `DISCHARGE_QUIET=1`; the session API surfaces
/// the same information via
/// [`Verifier::env_warnings`](crate::api::Verifier::env_warnings) and
/// [`Verifier::cache_warnings`](crate::api::Verifier::cache_warnings)).
pub(crate) fn legacy_session() -> Verifier {
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    let session = Verifier::builder().env().build();
    WARN_ONCE.call_once(|| {
        for warning in session.env_warnings() {
            crate::diag::warn(format_args!("{warning}"));
        }
        for warning in session.cache_warnings() {
            crate::diag::warn(format_args!("{warning}"));
        }
    });
    session
}

/// Discharges a VC list through a fresh environment-configured session.
#[deprecated(note = "build a `relaxed_core::Verifier` and use `verifier.engine().discharge(vcs)`")]
pub fn discharge(vcs: Vec<Vc>) -> Report {
    legacy_session().engine().discharge(vcs)
}

/// The obligations of one stage of `spec` for `program` — the engine of
/// [`StageRunner::vcs`](crate::api::StageRunner::vcs).
pub(crate) fn stage_vcs(
    stage: Stage,
    program: &Program,
    spec: &Spec,
) -> Result<Vec<Vc>, VcgenError> {
    match stage {
        Stage::Original => unary_stage_vcs(UnaryLogic::Original, program, &spec.pre, &spec.post),
        Stage::Intermediate => {
            unary_stage_vcs(UnaryLogic::Intermediate, program, &spec.pre, &spec.post)
        }
        Stage::Relaxed => relaxed_stage_vcs(program, &spec.rel_pre, &spec.rel_post),
    }
}

/// The `⊢o` obligations of `{pre} program {post}`.
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
#[deprecated(note = "use `relaxed_core::Verifier::stage(Stage::Original).vcs(..)`")]
pub fn original_vcs(
    program: &Program,
    pre: &Formula,
    post: &Formula,
) -> Result<Vec<Vc>, VcgenError> {
    unary_stage_vcs(UnaryLogic::Original, program, pre, post)
}

/// The `⊢i` obligations of `{pre} program {post}`.
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations or
/// contains `relate` statements.
#[deprecated(note = "use `relaxed_core::Verifier::stage(Stage::Intermediate).vcs(..)`")]
pub fn intermediate_vcs(
    program: &Program,
    pre: &Formula,
    post: &Formula,
) -> Result<Vec<Vc>, VcgenError> {
    unary_stage_vcs(UnaryLogic::Intermediate, program, pre, post)
}

fn unary_stage_vcs(
    logic: UnaryLogic,
    program: &Program,
    pre: &Formula,
    post: &Formula,
) -> Result<Vec<Vc>, VcgenError> {
    let mut arrays = array_vars(program.body());
    arrays.extend(formula_array_vars(pre));
    arrays.extend(formula_array_vars(post));
    vcs_unary(logic, program.body(), pre, post, &arrays)
}

pub(crate) fn relaxed_stage_vcs(
    program: &Program,
    rel_pre: &RelFormula,
    rel_post: &RelFormula,
) -> Result<Vec<Vc>, VcgenError> {
    let mut arrays = array_vars(program.body());
    arrays.extend(rel_formula_array_vars(rel_pre));
    arrays.extend(rel_formula_array_vars(rel_post));
    vcs_relaxed(program.body(), rel_pre, rel_post, &arrays)
}

/// The `⊢r` obligations of `{rel_pre} program {rel_post}`.
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
#[deprecated(note = "use `relaxed_core::Verifier::stage(Stage::Relaxed).vcs(..)`")]
pub fn relaxed_vcs(
    program: &Program,
    rel_pre: &RelFormula,
    rel_post: &RelFormula,
) -> Result<Vec<Vc>, VcgenError> {
    relaxed_stage_vcs(program, rel_pre, rel_post)
}

/// The combined `⊢o` and `⊢r` obligations of `spec`, in the order the
/// staged pipeline discharges them.
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
#[deprecated(note = "use `relaxed_core::Verifier::vcs(..)`")]
pub fn acceptability_vcs(program: &Program, spec: &Spec) -> Result<Vec<Vc>, VcgenError> {
    let mut vcs = stage_vcs(Stage::Original, program, spec)?;
    vcs.extend(stage_vcs(Stage::Relaxed, program, spec)?);
    Ok(vcs)
}

/// A unary-only [`Spec`] (trivial relational half), for the legacy
/// per-stage entry points.
fn unary_spec(pre: &Formula, post: &Formula) -> Spec {
    Spec {
        pre: pre.clone(),
        post: post.clone(),
        rel_pre: RelFormula::True,
        rel_post: RelFormula::True,
    }
}

/// A relational-only [`Spec`] (trivial unary half), for the legacy
/// per-stage entry points.
fn rel_spec(rel_pre: &RelFormula, rel_post: &RelFormula) -> Spec {
    Spec {
        pre: Formula::True,
        post: Formula::True,
        rel_pre: rel_pre.clone(),
        rel_post: rel_post.clone(),
    }
}

/// Verifies `⊢o {pre} program {post}` — the axiomatic original semantics.
///
/// A verified report gives Lemma 2: no original execution from a state
/// satisfying `pre` terminates in `wr` (it may still terminate in `ba`).
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
#[deprecated(note = "use `relaxed_core::Verifier::stage(Stage::Original).check(..)`")]
pub fn verify_original(
    program: &Program,
    pre: &Formula,
    post: &Formula,
) -> Result<Report, VcgenError> {
    legacy_session()
        .stage(Stage::Original)
        .check(program, &unary_spec(pre, post))
}

/// [`verify_original`] on a caller-provided engine (shared verdict cache).
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
#[deprecated(
    note = "use `relaxed_core::Verifier::stage(Stage::Original).check(..)` on a shared session"
)]
pub fn verify_original_with(
    program: &Program,
    pre: &Formula,
    post: &Formula,
    engine: &DischargeEngine,
) -> Result<Report, VcgenError> {
    let spec = unary_spec(pre, post);
    Ok(engine.discharge(stage_vcs(Stage::Original, program, &spec)?))
}

/// Verifies `⊢i {pre} program {post}` — the axiomatic intermediate
/// semantics (Lemma 4: relaxed executions free of both `wr` and `ba`).
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations or
/// contains `relate` statements.
#[deprecated(note = "use `relaxed_core::Verifier::stage(Stage::Intermediate).check(..)`")]
pub fn verify_intermediate(
    program: &Program,
    pre: &Formula,
    post: &Formula,
) -> Result<Report, VcgenError> {
    legacy_session()
        .stage(Stage::Intermediate)
        .check(program, &unary_spec(pre, post))
}

/// [`verify_intermediate`] on a caller-provided engine (shared verdict
/// cache).
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations or
/// contains `relate` statements.
#[deprecated(
    note = "use `relaxed_core::Verifier::stage(Stage::Intermediate).check(..)` on a shared session"
)]
pub fn verify_intermediate_with(
    program: &Program,
    pre: &Formula,
    post: &Formula,
    engine: &DischargeEngine,
) -> Result<Report, VcgenError> {
    let spec = unary_spec(pre, post);
    Ok(engine.discharge(stage_vcs(Stage::Intermediate, program, &spec)?))
}

/// Verifies `⊢r {rel_pre} program {rel_post}` — the axiomatic relaxed
/// semantics.
///
/// A verified report gives Theorem 6 (all executed `relate` statements
/// hold between paired executions) and Theorem 7 (error-free original
/// executions imply error-free relaxed executions).
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
#[deprecated(note = "use `relaxed_core::Verifier::stage(Stage::Relaxed).check(..)`")]
pub fn verify_relaxed(
    program: &Program,
    rel_pre: &RelFormula,
    rel_post: &RelFormula,
) -> Result<Report, VcgenError> {
    legacy_session()
        .stage(Stage::Relaxed)
        .check(program, &rel_spec(rel_pre, rel_post))
}

/// [`verify_relaxed`] on a caller-provided engine (shared verdict cache).
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
#[deprecated(
    note = "use `relaxed_core::Verifier::stage(Stage::Relaxed).check(..)` on a shared session"
)]
pub fn verify_relaxed_with(
    program: &Program,
    rel_pre: &RelFormula,
    rel_post: &RelFormula,
    engine: &DischargeEngine,
) -> Result<Report, VcgenError> {
    Ok(engine.discharge(relaxed_stage_vcs(program, rel_pre, rel_post)?))
}

/// The full acceptability specification of a relaxed program.
#[derive(Clone, Debug)]
pub struct Spec {
    /// Unary precondition for the original proof.
    pub pre: Formula,
    /// Unary postcondition for the original proof.
    pub post: Formula,
    /// Relational precondition (typically `initial_sync`).
    pub rel_pre: RelFormula,
    /// Relational postcondition.
    pub rel_post: RelFormula,
}

impl Spec {
    /// A spec with trivial postconditions and the canonical synced start.
    pub fn synced(program: &Program) -> Spec {
        Spec {
            pre: Formula::True,
            post: Formula::True,
            rel_pre: crate::noninterference::initial_sync(program),
            rel_post: RelFormula::True,
        }
    }
}

/// The combined result of the staged verification (§1.2): first `⊢o`,
/// then `⊢r` (optionally with a standalone `⊢i` pass in between, when
/// the session's [`StageSet`] selects it).
///
/// Stages the session's configuration skips are present as empty
/// reports, and the theorem-level accessors
/// ([`original_progress`](AcceptabilityReport::original_progress),
/// [`relative_relaxed_progress`](AcceptabilityReport::relative_relaxed_progress),
/// [`relaxed_progress`](AcceptabilityReport::relaxed_progress)) return
/// `false` when the stage backing them did not run — a skipped proof is
/// never reported as a proved theorem.
#[derive(Clone, Debug)]
pub struct AcceptabilityReport {
    /// The stages this verification ran (the session's stage selection).
    pub stages: StageSet,
    /// The `⊢o` report.
    pub original: Report,
    /// The standalone `⊢i` report, when the intermediate stage was
    /// selected (it is not part of the default pipeline: the `⊢r` diverge
    /// rule invokes `⊢i` internally where needed).
    pub intermediate: Option<Report>,
    /// The `⊢r` report.
    pub relaxed: Report,
    /// Engine activity folded over the stages of *this* verification
    /// (per-call counters, so a shared engine's history does not leak
    /// in). The `⊢r` stage's diverge rule re-proves many `⊢o` goals, so
    /// sharing one engine across the stages turns those into cache hits;
    /// `unique_goals` counts the goals this verification newly added to
    /// the cache.
    pub engine: EngineStats,
}

impl AcceptabilityReport {
    /// One flat [`Report`] over every stage that ran, in discharge order
    /// — per-VC results concatenated and statistics folded through
    /// [`Report::merge`].
    pub fn combined(&self) -> Report {
        let mut all = self.original.clone();
        if let Some(intermediate) = &self.intermediate {
            all.merge(intermediate.clone());
        }
        all.merge(self.relaxed.clone());
        all
    }

    /// Whether every obligation of every stage that ran was proved
    /// (including a selected standalone `⊢i` stage, which
    /// [`relaxed_progress`](AcceptabilityReport::relaxed_progress) does
    /// not consult).
    pub fn verified(&self) -> bool {
        self.original.verified()
            && self.intermediate.as_ref().is_none_or(Report::verified)
            && self.relaxed.verified()
    }

    /// Total obligations across every stage that ran (without cloning
    /// the per-VC results the way [`combined`](AcceptabilityReport::combined)
    /// does).
    pub fn total_vcs(&self) -> usize {
        self.original.len() + self.intermediate.as_ref().map_or(0, Report::len) + self.relaxed.len()
    }

    /// Proved obligations across every stage that ran.
    pub fn proved_vcs(&self) -> usize {
        let proved = |r: &Report| r.results.iter().filter(|v| v.proved()).count();
        proved(&self.original)
            + self.intermediate.as_ref().map_or(0, &proved)
            + proved(&self.relaxed)
    }

    /// Lemma 2 — *Original Progress Modulo Assumptions*: no original
    /// execution evaluates to `wr`. `false` when the `⊢o` stage was not
    /// selected (its obligations were never generated).
    pub fn original_progress(&self) -> bool {
        self.stages.original && self.original.verified()
    }

    /// Theorems 6 and 7 — *Soundness of Relational Assertions* and
    /// *Relative Relaxed Progress*: paired executions satisfy every
    /// `relate`, and error-free original runs make relaxed runs
    /// error-free. `false` when the `⊢r` stage was not selected (its
    /// obligations were never generated).
    pub fn relative_relaxed_progress(&self) -> bool {
        self.stages.relaxed && self.relaxed.verified()
    }

    /// Theorem 8 — *Relaxed Progress*: with both proofs in hand, if
    /// original executions terminate without violating an assumption, no
    /// relaxed execution errs.
    pub fn relaxed_progress(&self) -> bool {
        self.original_progress() && self.relative_relaxed_progress()
    }

    /// Corollary 9 — *Relaxed Progress Modulo Original Assumptions*: any
    /// error in a relaxed execution corresponds to a violated assumption
    /// reproducible in the original program.
    pub fn debuggability(&self) -> bool {
        self.relaxed_progress()
    }
}

impl fmt::Display for AcceptabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "⊢o (original semantics): {}", self.original)?;
        if let Some(intermediate) = &self.intermediate {
            writeln!(f, "⊢i (intermediate semantics): {intermediate}")?;
        }
        writeln!(f, "⊢r (relaxed semantics): {}", self.relaxed)?;
        writeln!(
            f,
            "Original Progress Modulo Assumptions (Lemma 2): {}",
            self.original_progress()
        )?;
        writeln!(
            f,
            "Relative Relaxed Progress (Theorem 7) + Relational Assertions (Theorem 6): {}",
            self.relative_relaxed_progress()
        )?;
        writeln!(
            f,
            "Relaxed Progress (Theorem 8): {}",
            self.relaxed_progress()
        )
    }
}

/// The staged pipeline on a caller-provided engine: generate and
/// discharge the VCs of every selected stage in order (`⊢o`, `⊢i`, `⊢r`),
/// sharing the engine's verdict cache across the stages. This is the one
/// implementation behind [`Verifier::check`](crate::api::Verifier::check)
/// and the legacy free functions.
pub(crate) fn staged_check(
    engine: &DischargeEngine,
    program: &Program,
    spec: &Spec,
    stages: StageSet,
    opts: DischargeOptions,
) -> Result<AcceptabilityReport, VcgenError> {
    let run = |stage| -> Result<Report, VcgenError> {
        let vcgen_started = std::time::Instant::now();
        let vcs = {
            let mut span = crate::telemetry::span("vcgen", "vcgen");
            if span.is_active() {
                span.arg(
                    "stage",
                    match stage {
                        Stage::Original => "original",
                        Stage::Intermediate => "intermediate",
                        Stage::Relaxed => "relaxed",
                    },
                );
            }
            stage_vcs(stage, program, spec)?
        };
        let vcgen_us = u64::try_from(vcgen_started.elapsed().as_micros()).unwrap_or(u64::MAX);
        engine.note_vcgen_us(vcgen_us);
        let mut report = engine.discharge_with(vcs, opts);
        // Phase breakdowns survive with telemetry off: vcgen wall time
        // rides the stage report's engine stats (satellite of the
        // trace-file spans above).
        report.engine.elapsed_vcgen_ms = vcgen_us / 1000;
        Ok(report)
    };
    let original = if stages.original {
        run(Stage::Original)?
    } else {
        Report::default()
    };
    let intermediate = if stages.intermediate {
        Some(run(Stage::Intermediate)?)
    } else {
        None
    };
    let relaxed = if stages.relaxed {
        run(Stage::Relaxed)?
    } else {
        Report::default()
    };
    // Report this verification's activity, not the engine's lifetime
    // totals: the engine may be shared across many verifications (and, in
    // corpus mode, across concurrently verified programs — per-call
    // counters stay attributable where engine-total deltas would not).
    let mut engine_stats = original.engine;
    if let Some(intermediate) = &intermediate {
        engine_stats.absorb(&intermediate.engine);
    }
    engine_stats.absorb(&relaxed.engine);
    Ok(AcceptabilityReport {
        stages,
        original,
        intermediate,
        relaxed,
        engine: engine_stats,
    })
}

/// Runs the paper's staged verification methodology end to end.
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
#[deprecated(note = "use `relaxed_core::Verifier::check(..)`")]
pub fn verify_acceptability(
    program: &Program,
    spec: &Spec,
) -> Result<AcceptabilityReport, VcgenError> {
    legacy_session().check(program, spec)
}

/// [`verify_acceptability`] on a caller-provided engine: both stages share
/// the engine's verdict cache, so obligations the `⊢r` diverge rule
/// re-proves from the `⊢o` stage are answered without solver work.
///
/// # Errors
///
/// Returns [`VcgenError`] when the program lacks required annotations.
#[deprecated(note = "use `relaxed_core::Verifier::check(..)` on a shared session")]
pub fn verify_acceptability_with(
    program: &Program,
    spec: &Spec,
    engine: &DischargeEngine,
) -> Result<AcceptabilityReport, VcgenError> {
    staged_check(
        engine,
        program,
        spec,
        StageSet::default(),
        DischargeOptions::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxed_lang::{parse_formula, parse_program, parse_rel_formula};

    fn check_original(program: &Program, pre: &Formula, post: &Formula) -> Report {
        Verifier::new()
            .stage(Stage::Original)
            .check(program, &unary_spec(pre, post))
            .unwrap()
    }

    #[test]
    fn quickstart_program_verifies_end_to_end() {
        let program = parse_program(
            "x0 = x;
             relax (x) st (x0 <= x && x <= x0 + 2);
             relate l1 : x<o> <= x<r> && x<r> - x<o> <= 2;",
        )
        .unwrap();
        let spec = Spec {
            pre: Formula::True,
            post: Formula::True,
            rel_pre: parse_rel_formula("x<o> == x<r>").unwrap(),
            rel_post: RelFormula::True,
        };
        let report = Verifier::new().check(&program, &spec).unwrap();
        assert!(report.relaxed_progress(), "{report}");
    }

    #[test]
    fn broken_relate_fails_relational_stage_only() {
        let program = parse_program(
            "x0 = x;
             relax (x) st (x0 <= x && x <= x0 + 2);
             relate l1 : x<r> <= x<o>;",
        )
        .unwrap();
        let spec = Spec {
            pre: Formula::True,
            post: Formula::True,
            rel_pre: parse_rel_formula("x<o> == x<r>").unwrap(),
            rel_post: RelFormula::True,
        };
        let report = Verifier::new().check(&program, &spec).unwrap();
        assert!(report.original_progress());
        assert!(!report.relative_relaxed_progress());
        assert!(!report.relaxed_progress());
    }

    #[test]
    fn original_assert_violation_fails_first_stage() {
        let program = parse_program("x = 1; assert x == 2;").unwrap();
        let report = check_original(&program, &Formula::True, &Formula::True);
        assert!(!report.verified());
        assert_eq!(report.failures().count(), 1);
    }

    #[test]
    fn assume_is_free_in_original_verification() {
        let program = parse_program("assume x >= 10; assert x >= 10;").unwrap();
        let report = check_original(&program, &Formula::True, &Formula::True);
        assert!(report.verified());
    }

    #[test]
    fn postcondition_is_checked() {
        let program = parse_program("y = x + 1;").unwrap();
        let pre = parse_formula("x >= 0").unwrap();
        let post_good = parse_formula("y >= 1").unwrap();
        let post_bad = parse_formula("y >= 2").unwrap();
        assert!(check_original(&program, &pre, &post_good).verified());
        assert!(!check_original(&program, &pre, &post_bad).verified());
    }

    #[test]
    fn report_display_mentions_failures() {
        let program = parse_program("assert false;").unwrap();
        let report = check_original(&program, &Formula::True, &Formula::True);
        let text = report.to_string();
        assert!(text.contains("FAILED"), "{text}");
    }

    #[test]
    fn report_merge_folds_results_and_stats() {
        let program = parse_program("assert x >= 0 || x <= 0; assert true;").unwrap();
        let first = check_original(&program, &Formula::True, &Formula::True);
        let second = check_original(&program, &parse_formula("x >= 1").unwrap(), &Formula::True);
        let mut merged = first.clone();
        merged.merge(second.clone());
        assert_eq!(merged.len(), first.len() + second.len());
        let mut stats = first.stats;
        stats.absorb(&second.stats);
        assert_eq!(merged.stats, stats);
        assert_eq!(
            merged.engine.cache_misses,
            first.engine.cache_misses + second.engine.cache_misses
        );
    }
}
