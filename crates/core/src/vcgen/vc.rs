//! Verification conditions and generator errors.

use relaxed_lang::{Formula, RelFormula};
use std::fmt;

/// The logical content of a verification condition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VcBody {
    /// A unary formula that must be valid.
    Unary(Formula),
    /// A relational formula that must be valid.
    Rel(RelFormula),
}

/// One proof obligation with provenance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Vc {
    /// A short name, e.g. `invariant-preserved`.
    pub name: String,
    /// Where in the program the obligation arose.
    pub context: String,
    /// The formula to prove valid.
    pub body: VcBody,
    /// Fragment ids (see [`crate::depmap::fragment_id`]) of every program
    /// statement and spec formula whose text this obligation's formula was
    /// built from — the goal→fragment dependency map recorded at vcgen
    /// time. Sorted and deduplicated; an edit to any listed fragment may
    /// change the obligation, an edit to none of them cannot.
    pub deps: Vec<String>,
}

/// Splits a formula into its top-level conjuncts, flattening nested
/// `&&` left-to-right. A non-conjunction is its own single conjunct.
///
/// This is the shared notion of "invariant conjunct" between the VC
/// generators (which conjoin invariants wholesale) and the spec-coverage
/// lint (which inspects each conjunct individually).
pub fn formula_conjuncts(p: &Formula) -> Vec<&Formula> {
    fn walk<'a>(p: &'a Formula, out: &mut Vec<&'a Formula>) {
        match p {
            Formula::And(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            other => out.push(other),
        }
    }
    let mut out = Vec::new();
    walk(p, &mut out);
    out
}

impl fmt::Display for Vc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: ", self.context, self.name)?;
        match &self.body {
            VcBody::Unary(p) => write!(f, "{p}"),
            VcBody::Rel(p) => write!(f, "{p}"),
        }
    }
}

/// Why VC generation failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VcgenError {
    /// A `while` loop lacks the invariant annotation the calculus needs.
    MissingInvariant {
        /// `invariant` or `rinvariant`.
        kind: &'static str,
        /// Where the loop is.
        context: String,
    },
    /// A `relate` statement appeared where the logic does not permit one —
    /// in the intermediate semantics or under a diverge contract
    /// (the paper's `no_rel(s)` side condition).
    RelateNotAllowed {
        /// Where the relate is.
        context: String,
    },
    /// A `havoc`/`relax` targets an array with a predicate other than
    /// `true` (unsupported; see the crate docs).
    ArrayChoiceWithPredicate {
        /// Where the statement is.
        context: String,
    },
    /// An array read nested inside another read of the same array blocks
    /// the store/havoc rewriting.
    NestedSelect {
        /// The array variable.
        array: String,
        /// Where it was found.
        context: String,
    },
    /// A select index mentions a bound variable, which the select
    /// abstraction cannot lift.
    BoundIndex {
        /// The array variable.
        array: String,
        /// Where it was found.
        context: String,
    },
}

impl fmt::Display for VcgenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VcgenError::MissingInvariant { kind, context } => {
                write!(f, "{context}: while loop needs a {kind} annotation")
            }
            VcgenError::RelateNotAllowed { context } => {
                write!(f, "{context}: relate statement not allowed here (no_rel)")
            }
            VcgenError::ArrayChoiceWithPredicate { context } => write!(
                f,
                "{context}: havoc/relax over an array requires the predicate `true`"
            ),
            VcgenError::NestedSelect { array, context } => write!(
                f,
                "{context}: nested read of array {array} blocks store rewriting"
            ),
            VcgenError::BoundIndex { array, context } => write!(
                f,
                "{context}: index of a read of {array} mentions a bound variable"
            ),
        }
    }
}

impl std::error::Error for VcgenError {}
