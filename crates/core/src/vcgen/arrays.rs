//! Select-abstraction: the array machinery behind the `wp` rules for
//! stores, array havocs, and diverge framing.
//!
//! A postcondition `Q` that reads a mutated array `x` is rewritten by
//! replacing each distinct read `x[j]` with a fresh integer variable; the
//! caller then either constrains those variables (store: read-over-write
//! case split) or universally quantifies them (havoc/diverge: contents
//! forgotten). Reads whose index mentions a bound variable cannot be
//! lifted out of their binder and are rejected.

use super::vc::VcgenError;
use crate::encode;
use relaxed_lang::free::int_expr_vars;
use relaxed_lang::subst::FreshVars;
use relaxed_lang::{Formula, IntExpr, RelFormula, RelIntExpr, Side, Var};
use std::collections::{BTreeMap, BTreeSet};

/// Collects the distinct index expressions of reads `target[...]` in a
/// unary formula.
///
/// # Errors
///
/// Rejects nested reads of `target` and indices that mention a variable
/// bound inside the formula.
pub fn collect_selects(
    p: &Formula,
    target: &Var,
    context: &str,
) -> Result<Vec<IntExpr>, VcgenError> {
    let mut out = Vec::new();
    let mut bound = BTreeSet::new();
    walk_formula(p, target, &mut bound, &mut out, context)?;
    Ok(out)
}

fn note_index(
    target: &Var,
    index: &IntExpr,
    bound: &BTreeSet<Var>,
    out: &mut Vec<IntExpr>,
    context: &str,
) -> Result<(), VcgenError> {
    let vars = int_expr_vars(index);
    if vars.contains(target) {
        return Err(VcgenError::NestedSelect {
            array: target.name().to_string(),
            context: context.to_string(),
        });
    }
    if vars.iter().any(|v| bound.contains(v)) {
        return Err(VcgenError::BoundIndex {
            array: target.name().to_string(),
            context: context.to_string(),
        });
    }
    if !out.contains(index) {
        out.push(index.clone());
    }
    Ok(())
}

fn walk_int(
    e: &IntExpr,
    target: &Var,
    bound: &BTreeSet<Var>,
    out: &mut Vec<IntExpr>,
    context: &str,
) -> Result<(), VcgenError> {
    match e {
        IntExpr::Const(_) | IntExpr::Var(_) | IntExpr::Len(_) => Ok(()),
        IntExpr::Bin(_, lhs, rhs) => {
            walk_int(lhs, target, bound, out, context)?;
            walk_int(rhs, target, bound, out, context)
        }
        IntExpr::Select(v, index) => {
            walk_int(index, target, bound, out, context)?;
            if v == target {
                note_index(target, index, bound, out, context)?;
            }
            Ok(())
        }
    }
}

fn walk_formula(
    p: &Formula,
    target: &Var,
    bound: &mut BTreeSet<Var>,
    out: &mut Vec<IntExpr>,
    context: &str,
) -> Result<(), VcgenError> {
    match p {
        Formula::True | Formula::False => Ok(()),
        Formula::Cmp(_, lhs, rhs) => {
            walk_int(lhs, target, bound, out, context)?;
            walk_int(rhs, target, bound, out, context)
        }
        Formula::And(l, r) | Formula::Or(l, r) | Formula::Implies(l, r) => {
            walk_formula(l, target, bound, out, context)?;
            walk_formula(r, target, bound, out, context)
        }
        Formula::Not(inner) => walk_formula(inner, target, bound, out, context),
        Formula::Exists(v, body) | Formula::Forall(v, body) => {
            let fresh_here = bound.insert(v.clone());
            let r = walk_formula(body, target, bound, out, context);
            if fresh_here {
                bound.remove(v);
            }
            r
        }
    }
}

/// Replaces reads `target[j]` with the mapped variables.
pub fn replace_selects(p: &Formula, target: &Var, map: &BTreeMap<IntExpr, Var>) -> Formula {
    fn go_int(e: &IntExpr, target: &Var, map: &BTreeMap<IntExpr, Var>) -> IntExpr {
        match e {
            IntExpr::Const(_) | IntExpr::Var(_) | IntExpr::Len(_) => e.clone(),
            IntExpr::Bin(op, lhs, rhs) => {
                IntExpr::bin(*op, go_int(lhs, target, map), go_int(rhs, target, map))
            }
            IntExpr::Select(v, index) => {
                let index2 = go_int(index, target, map);
                if v == target {
                    if let Some(fresh) = map.get(&index2) {
                        return IntExpr::Var(fresh.clone());
                    }
                }
                IntExpr::Select(v.clone(), Box::new(index2))
            }
        }
    }
    fn go(p: &Formula, target: &Var, map: &BTreeMap<IntExpr, Var>) -> Formula {
        match p {
            Formula::True | Formula::False => p.clone(),
            Formula::Cmp(op, lhs, rhs) => {
                Formula::Cmp(*op, go_int(lhs, target, map), go_int(rhs, target, map))
            }
            Formula::And(l, r) => {
                Formula::And(Box::new(go(l, target, map)), Box::new(go(r, target, map)))
            }
            Formula::Or(l, r) => {
                Formula::Or(Box::new(go(l, target, map)), Box::new(go(r, target, map)))
            }
            Formula::Implies(l, r) => {
                Formula::Implies(Box::new(go(l, target, map)), Box::new(go(r, target, map)))
            }
            Formula::Not(inner) => Formula::Not(Box::new(go(inner, target, map))),
            Formula::Exists(v, body) => Formula::Exists(v.clone(), Box::new(go(body, target, map))),
            Formula::Forall(v, body) => Formula::Forall(v.clone(), Box::new(go(body, target, map))),
        }
    }
    go(p, target, map)
}

/// Abstracts all reads of `target` in `q` into fresh variables.
///
/// Returns the rewritten formula and the `(index, fresh var)` pairs; the
/// caller decides how to constrain/quantify the fresh variables.
pub fn abstract_selects(
    q: &Formula,
    target: &Var,
    fresh: &mut FreshVars,
    context: &str,
) -> Result<(Formula, Vec<(IntExpr, Var)>), VcgenError> {
    let indices = collect_selects(q, target, context)?;
    let mut map = BTreeMap::new();
    let mut pairs = Vec::new();
    for index in indices {
        let v = fresh.fresh(&Var::new(format!("{}_cell", target.name())));
        map.insert(index.clone(), v.clone());
        pairs.push((index, v));
    }
    Ok((replace_selects(q, target, &map), pairs))
}

// ------------------------- relational versions -------------------------

/// Collects reads `target<side>[...]` in a relational formula.
///
/// # Errors
///
/// Same conditions as [`collect_selects`].
pub fn collect_rel_selects(
    p: &RelFormula,
    target: &Var,
    side: Side,
    context: &str,
) -> Result<Vec<RelIntExpr>, VcgenError> {
    let mut out = Vec::new();
    let mut bound = BTreeSet::new();
    rel_walk_formula(p, target, side, &mut bound, &mut out, context)?;
    Ok(out)
}

fn rel_note_index(
    target: &Var,
    side: Side,
    index: &RelIntExpr,
    bound: &BTreeSet<(Var, Side)>,
    out: &mut Vec<RelIntExpr>,
    context: &str,
) -> Result<(), VcgenError> {
    let vars = relaxed_lang::free::rel_int_expr_vars(index);
    if vars.contains(&(target.clone(), side)) {
        return Err(VcgenError::NestedSelect {
            array: format!("{}{}", target.name(), side.marker()),
            context: context.to_string(),
        });
    }
    if vars.iter().any(|v| bound.contains(v)) {
        return Err(VcgenError::BoundIndex {
            array: format!("{}{}", target.name(), side.marker()),
            context: context.to_string(),
        });
    }
    if !out.contains(index) {
        out.push(index.clone());
    }
    Ok(())
}

fn rel_walk_int(
    e: &RelIntExpr,
    target: &Var,
    side: Side,
    bound: &BTreeSet<(Var, Side)>,
    out: &mut Vec<RelIntExpr>,
    context: &str,
) -> Result<(), VcgenError> {
    match e {
        RelIntExpr::Const(_) | RelIntExpr::Var(_, _) | RelIntExpr::Len(_, _) => Ok(()),
        RelIntExpr::Bin(_, lhs, rhs) => {
            rel_walk_int(lhs, target, side, bound, out, context)?;
            rel_walk_int(rhs, target, side, bound, out, context)
        }
        RelIntExpr::Select(v, s, index) => {
            rel_walk_int(index, target, side, bound, out, context)?;
            if v == target && *s == side {
                rel_note_index(target, side, index, bound, out, context)?;
            }
            Ok(())
        }
    }
}

fn rel_walk_formula(
    p: &RelFormula,
    target: &Var,
    side: Side,
    bound: &mut BTreeSet<(Var, Side)>,
    out: &mut Vec<RelIntExpr>,
    context: &str,
) -> Result<(), VcgenError> {
    match p {
        RelFormula::True | RelFormula::False => Ok(()),
        RelFormula::Cmp(_, lhs, rhs) => {
            rel_walk_int(lhs, target, side, bound, out, context)?;
            rel_walk_int(rhs, target, side, bound, out, context)
        }
        RelFormula::And(l, r) | RelFormula::Or(l, r) | RelFormula::Implies(l, r) => {
            rel_walk_formula(l, target, side, bound, out, context)?;
            rel_walk_formula(r, target, side, bound, out, context)
        }
        RelFormula::Not(inner) => rel_walk_formula(inner, target, side, bound, out, context),
        RelFormula::Exists(v, s, body) | RelFormula::Forall(v, s, body) => {
            let fresh_here = bound.insert((v.clone(), *s));
            let r = rel_walk_formula(body, target, side, bound, out, context);
            if fresh_here {
                bound.remove(&(v.clone(), *s));
            }
            r
        }
    }
}

/// Replaces reads `target<side>[j]` with the mapped (side-tagged fresh)
/// variables.
pub fn replace_rel_selects(
    p: &RelFormula,
    target: &Var,
    side: Side,
    map: &BTreeMap<RelIntExpr, Var>,
) -> RelFormula {
    fn go_int(
        e: &RelIntExpr,
        target: &Var,
        side: Side,
        map: &BTreeMap<RelIntExpr, Var>,
    ) -> RelIntExpr {
        match e {
            RelIntExpr::Const(_) | RelIntExpr::Var(_, _) | RelIntExpr::Len(_, _) => e.clone(),
            RelIntExpr::Bin(op, lhs, rhs) => RelIntExpr::bin(
                *op,
                go_int(lhs, target, side, map),
                go_int(rhs, target, side, map),
            ),
            RelIntExpr::Select(v, s, index) => {
                let index2 = go_int(index, target, side, map);
                if v == target && *s == side {
                    if let Some(fresh) = map.get(&index2) {
                        return RelIntExpr::Var(fresh.clone(), side);
                    }
                }
                RelIntExpr::Select(v.clone(), *s, Box::new(index2))
            }
        }
    }
    fn go(p: &RelFormula, target: &Var, side: Side, map: &BTreeMap<RelIntExpr, Var>) -> RelFormula {
        match p {
            RelFormula::True | RelFormula::False => p.clone(),
            RelFormula::Cmp(op, lhs, rhs) => RelFormula::Cmp(
                *op,
                go_int(lhs, target, side, map),
                go_int(rhs, target, side, map),
            ),
            RelFormula::And(l, r) => RelFormula::And(
                Box::new(go(l, target, side, map)),
                Box::new(go(r, target, side, map)),
            ),
            RelFormula::Or(l, r) => RelFormula::Or(
                Box::new(go(l, target, side, map)),
                Box::new(go(r, target, side, map)),
            ),
            RelFormula::Implies(l, r) => RelFormula::Implies(
                Box::new(go(l, target, side, map)),
                Box::new(go(r, target, side, map)),
            ),
            RelFormula::Not(inner) => RelFormula::Not(Box::new(go(inner, target, side, map))),
            RelFormula::Exists(v, s, body) => {
                RelFormula::Exists(v.clone(), *s, Box::new(go(body, target, side, map)))
            }
            RelFormula::Forall(v, s, body) => {
                RelFormula::Forall(v.clone(), *s, Box::new(go(body, target, side, map)))
            }
        }
    }
    go(p, target, side, map)
}

/// Abstracts all reads of `target<side>` in `q` into fresh side-tagged
/// variables, returning the rewritten formula and the fresh binders.
pub fn abstract_rel_selects(
    q: &RelFormula,
    target: &Var,
    side: Side,
    fresh: &mut FreshVars,
    context: &str,
) -> Result<(RelFormula, Vec<(RelIntExpr, Var)>), VcgenError> {
    let indices = collect_rel_selects(q, target, side, context)?;
    let mut map = BTreeMap::new();
    let mut pairs = Vec::new();
    for index in indices {
        let v = fresh.fresh(&Var::new(format!(
            "{}_cell_{}",
            target.name(),
            match side {
                Side::Original => "o",
                Side::Relaxed => "r",
            }
        )));
        map.insert(index.clone(), v.clone());
        pairs.push((index, v));
    }
    Ok((replace_rel_selects(q, target, side, &map), pairs))
}

/// Reserved-name helper: every name the encoder might produce for the
/// formula, used to seed [`FreshVars`].
pub fn reserve_from_formula(fresh: &mut FreshVars, p: &Formula) {
    fresh.reserve(relaxed_lang::free::formula_vars(p));
}

/// Reserves the names of a relational formula (both sides).
pub fn reserve_from_rel_formula(fresh: &mut FreshVars, p: &RelFormula) {
    fresh.reserve(
        relaxed_lang::free::rel_formula_vars(p)
            .into_iter()
            .map(|(v, _)| v),
    );
    let _ = encode::EncodeCtx::new();
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxed_lang::builder::{c, sel, v};
    use relaxed_lang::CmpOp;

    fn a() -> Var {
        Var::new("a")
    }

    #[test]
    fn collect_distinct_indices() {
        // a[i] ≥ 0 ∧ a[i+1] ≥ a[i]
        let q = Formula::from(sel("a", v("i")).ge(c(0)))
            .and(sel("a", v("i") + c(1)).ge(sel("a", v("i"))).into());
        let idx = collect_selects(&q, &a(), "t").unwrap();
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn nested_select_rejected() {
        let q = Formula::from(sel("a", sel("a", c(0))).ge(c(0)));
        assert!(matches!(
            collect_selects(&q, &a(), "t"),
            Err(VcgenError::NestedSelect { .. })
        ));
    }

    #[test]
    fn bound_index_rejected() {
        let q = Formula::from(sel("a", v("k")).ge(c(0))).forall("k");
        assert!(matches!(
            collect_selects(&q, &a(), "t"),
            Err(VcgenError::BoundIndex { .. })
        ));
    }

    #[test]
    fn other_arrays_are_ignored() {
        let q = Formula::from(sel("b", v("i")).ge(c(0)));
        assert_eq!(collect_selects(&q, &a(), "t").unwrap().len(), 0);
    }

    #[test]
    fn abstraction_replaces_and_reports() {
        let mut fresh = FreshVars::new();
        let q = Formula::from(sel("a", v("i")).ge(c(0)));
        let (q2, pairs) = abstract_selects(&q, &a(), &mut fresh, "t").unwrap();
        assert_eq!(pairs.len(), 1);
        match q2 {
            Formula::Cmp(CmpOp::Ge, IntExpr::Var(fresh_var), _) => {
                assert_eq!(fresh_var, pairs[0].1);
            }
            other => panic!("expected rewritten atom, got {other:?}"),
        }
    }

    #[test]
    fn rel_abstraction_is_per_side() {
        use relaxed_lang::builder::{rsel, vo, vr};
        // a<o>[i<o>] ≤ a<r>[i<r>]
        let q: RelFormula = rsel("a", Side::Original, vo("i"))
            .le(rsel("a", Side::Relaxed, vr("i")))
            .into();
        let mut fresh = FreshVars::new();
        let (q2, pairs) = abstract_rel_selects(&q, &a(), Side::Relaxed, &mut fresh, "t").unwrap();
        assert_eq!(pairs.len(), 1);
        // The original-side read must survive.
        let remaining = collect_rel_selects(&q2, &a(), Side::Original, "t").unwrap();
        assert_eq!(remaining.len(), 1);
        let gone = collect_rel_selects(&q2, &a(), Side::Relaxed, "t").unwrap();
        assert_eq!(gone.len(), 0);
    }
}
