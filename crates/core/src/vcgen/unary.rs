//! Weakest-precondition VC generation for the unary logics: the axiomatic
//! *original* semantics `⊢o` (Fig. 7) and the axiomatic *intermediate*
//! semantics `⊢i` (Fig. 9).
//!
//! The two logics differ in exactly two rules, mirroring the paper:
//!
//! * `relax (X) st (e)` — in `⊢o` it is `assert e` over an unchanged state
//!   (the original execution must be a legal relaxed execution); in `⊢i`
//!   it is `havoc (X) st (e)`.
//! * `assume e` — in `⊢o` it may be assumed (`e ⇒ Q`); in `⊢i` it must be
//!   *proved* (`e ∧ Q`), because intermediate executions must not fail at
//!   all (Lemma 4).
//!
//! ### On the havoc rule
//!
//! The paper's `havoc` rule carries the satisfiability premise
//! `⟦(∃X'·P[X'/X]) ∧ e⟧ ≠ ∅` guarding the `wr` of `havoc-f`. Our
//! backwards calculus uses the per-state-precise equivalent
//! `wp(havoc (X) st e, Q) = (∃X'·e[X'/X]) ∧ (∀X'·e[X'/X] ⇒ Q[X'/X])`,
//! which both guards `havoc-f` from every reachable state and propagates
//! `Q` across all choices.
//!
//! ### Deviations
//!
//! Like the paper's ideal semantics, VCs do not model machine-level
//! partiality (overflow, division by zero): `assert`/`assume` guards are
//! the developer's tool for those, and the interpreters surface them as
//! `wr` dynamically.

use super::arrays::abstract_selects;
use super::vc::{Vc, VcBody, VcgenError};
use crate::depmap::fragment_id;
use relaxed_lang::free::bool_expr_vars;
use relaxed_lang::subst::{FreshVars, Subst};
use relaxed_lang::{BoolExpr, Formula, IntExpr, Stmt, Var};
use std::collections::BTreeSet;

/// Which unary logic to generate VCs for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnaryLogic {
    /// The axiomatic original semantics `⊢o` (Fig. 7).
    Original,
    /// The axiomatic intermediate semantics `⊢i` (Fig. 9).
    Intermediate,
}

/// The unary WP engine.
#[derive(Debug)]
pub struct UnaryVcgen {
    logic: UnaryLogic,
    fresh: FreshVars,
    array_vars: BTreeSet<Var>,
    vcs: Vec<Vc>,
    /// Fragment ids of everything the formula under construction was
    /// built from: the postcondition it started at plus every statement
    /// the backward traversal has absorbed. Snapshotted into each pushed
    /// VC's `deps` (see [`crate::depmap`]); loop bodies run on an
    /// isolated trail so an `invariant-preserved` obligation never blames
    /// fragments downstream of its loop.
    trail: BTreeSet<String>,
}

impl UnaryVcgen {
    /// Creates an engine for `logic`; `array_vars` routes choice targets
    /// and stores to the array rules (see [`crate::analysis::array_vars`]).
    pub fn new(logic: UnaryLogic, array_vars: BTreeSet<Var>, reserved: BTreeSet<Var>) -> Self {
        let mut fresh = FreshVars::new();
        fresh.reserve(reserved);
        UnaryVcgen {
            logic,
            fresh,
            array_vars,
            vcs: Vec::new(),
            trail: BTreeSet::new(),
        }
    }

    /// The side conditions accumulated so far.
    pub fn into_vcs(self) -> Vec<Vc> {
        self.vcs
    }

    /// Seeds the dependency trail (normally with the postcondition's
    /// fragment) before [`wp`](UnaryVcgen::wp) starts walking.
    pub fn seed_dep(&mut self, fragment: String) {
        self.trail.insert(fragment);
    }

    /// The current trail as sorted, deduplicated `deps` for a VC.
    fn deps(&self) -> Vec<String> {
        self.trail.iter().cloned().collect()
    }

    fn push_vc(&mut self, name: &str, context: &str, body: Formula) {
        self.vcs.push(Vc {
            name: name.to_string(),
            context: context.to_string(),
            body: VcBody::Unary(body),
            deps: self.deps(),
        });
    }

    /// `wp(s, q)` plus accumulated side conditions.
    ///
    /// # Errors
    ///
    /// See [`VcgenError`]; notably loops must carry `invariant`
    /// annotations and `relate` is rejected in the intermediate logic.
    pub fn wp(&mut self, s: &Stmt, q: Formula, context: &str) -> Result<Formula, VcgenError> {
        match s {
            Stmt::Skip => Ok(q),
            Stmt::Assign(..) | Stmt::Store(..) | Stmt::Havoc(..) | Stmt::Assert(_) => {
                self.trail.insert(fragment_id("stmt", &s.to_string()));
                match s {
                    Stmt::Assign(x, e) => Ok(Subst::single(x.clone(), e.clone()).apply(&q)),
                    Stmt::Store(x, index, value) => self.wp_store(x, index, value, q, context),
                    Stmt::Havoc(targets, pred) => self.wp_choice(targets, pred, q, context),
                    Stmt::Assert(pred) => Ok(Formula::from_bool_expr(pred).and(q)),
                    _ => unreachable!("outer match narrowed the variants"),
                }
            }
            Stmt::Relax(targets, pred) => match self.logic {
                // ⊢o: relax is `assert e` over an unchanged state — the
                // target list never enters the formula, so the dependency
                // is the predicate alone (editing the targets invalidates
                // ⊢r goals but no ⊢o goal).
                UnaryLogic::Original => {
                    self.trail
                        .insert(fragment_id("relax-pred", &pred.to_string()));
                    Ok(Formula::from_bool_expr(pred).and(q))
                }
                // ⊢i: relax is havoc (targets and predicate both matter).
                UnaryLogic::Intermediate => {
                    self.trail.insert(fragment_id("stmt", &s.to_string()));
                    self.wp_choice(targets, pred, q, context)
                }
            },
            Stmt::Assume(pred) => {
                self.trail.insert(fragment_id("stmt", &s.to_string()));
                match self.logic {
                    UnaryLogic::Original => Ok(Formula::from_bool_expr(pred).implies(q)),
                    // ⊢i: assumptions must be proved, like assertions.
                    UnaryLogic::Intermediate => Ok(Formula::from_bool_expr(pred).and(q)),
                }
            }
            Stmt::Relate(_, _) => match self.logic {
                // ⊢o: relate behaves as skip (Fig. 7) — and contributes no
                // dependency: editing a relate cannot change a ⊢o goal.
                UnaryLogic::Original => Ok(q),
                // ⊢i: no_rel(s) must hold wherever ⊢i applies.
                UnaryLogic::Intermediate => Err(VcgenError::RelateNotAllowed {
                    context: context.to_string(),
                }),
            },
            Stmt::If(i) => {
                let then_ctx = format!("{context}/if-then");
                let else_ctx = format!("{context}/if-else");
                let wp_then = self.wp(&i.then_branch, q.clone(), &then_ctx)?;
                let wp_else = self.wp(&i.else_branch, q, &else_ctx)?;
                self.trail.insert(fragment_id("cond", &i.cond.to_string()));
                let b = Formula::from_bool_expr(&i.cond);
                Ok(b.clone().implies(wp_then).and(b.not().implies(wp_else)))
            }
            Stmt::While(w) => {
                let inv = w.invariant.clone().ok_or(VcgenError::MissingInvariant {
                    kind: "invariant",
                    context: context.to_string(),
                })?;
                // The loop's obligations depend on its own pieces — body,
                // condition, invariant — but never on fragments downstream
                // of the loop (already in the trail, since the traversal is
                // backward). Run the body on an isolated trail, then fold
                // it back for the exit formula, which does embed `q`.
                let outer_trail = std::mem::take(&mut self.trail);
                self.trail.insert(fragment_id("cond", &w.cond.to_string()));
                self.trail.insert(fragment_id("inv", &inv.to_string()));
                let body_ctx = format!("{context}/while-body");
                let body_wp = match self.wp(&w.body, inv.clone(), &body_ctx) {
                    Ok(wp) => wp,
                    Err(e) => {
                        self.trail.extend(outer_trail);
                        return Err(e);
                    }
                };
                let b = Formula::from_bool_expr(&w.cond);
                self.push_vc(
                    "invariant-preserved",
                    context,
                    inv.clone().and(b.clone()).implies(body_wp),
                );
                self.trail.extend(outer_trail);
                // Exit, with framing: only the variables the body modifies
                // are quantified, so facts about everything else flow
                // through the loop untouched.
                let modified = match self.logic {
                    UnaryLogic::Original => w.body.modified_vars_original(),
                    UnaryLogic::Intermediate => w.body.modified_vars(),
                };
                let mut exit = inv.clone().and(b.not()).implies(q);
                let mut subst = Subst::new();
                let mut binders = Vec::new();
                let mut touched_arrays = Vec::new();
                for v in &modified {
                    if self.array_vars.contains(v) {
                        touched_arrays.push(v.clone());
                    } else {
                        let v2 = self.fresh.fresh(v);
                        subst.insert(v.clone(), IntExpr::Var(v2.clone()));
                        binders.push(v2);
                    }
                }
                exit = subst.apply(&exit);
                for a in touched_arrays {
                    let (exit2, cells) = abstract_selects(&exit, &a, &mut self.fresh, context)?;
                    exit = exit2;
                    binders.extend(cells.into_iter().map(|(_, v)| v));
                }
                Ok(inv.and(exit.forall_many(binders)))
            }
            Stmt::Seq(stmts) => {
                let mut q = q;
                for (i, s) in stmts.iter().enumerate().rev() {
                    let ctx = format!("{context}/{i}");
                    q = self.wp(s, q, &ctx)?;
                }
                Ok(q)
            }
        }
    }

    /// WP of `havoc`/`relax` over a mix of integer and array targets.
    fn wp_choice(
        &mut self,
        targets: &[Var],
        pred: &BoolExpr,
        q: Formula,
        context: &str,
    ) -> Result<Formula, VcgenError> {
        let (ints, arrays): (Vec<_>, Vec<_>) =
            targets.iter().partition(|t| !self.array_vars.contains(*t));
        if !arrays.is_empty() && *pred != BoolExpr::Const(true) {
            return Err(VcgenError::ArrayChoiceWithPredicate {
                context: context.to_string(),
            });
        }
        // Arrays: forget contents (lengths are preserved).
        let mut q = q;
        for a in arrays {
            let (q2, cells) = abstract_selects(&q, a, &mut self.fresh, context)?;
            q = q2.forall_many(cells.into_iter().map(|(_, v)| v));
        }
        if ints.is_empty() {
            return Ok(q);
        }
        // Integers: (∃X'. e') ∧ (∀X'. e' ⇒ Q'), with X' fresh.
        let mut subst = Subst::new();
        let mut fresh_names = Vec::new();
        for t in &ints {
            let t2 = self.fresh.fresh(t);
            subst.insert((*t).clone(), IntExpr::Var(t2.clone()));
            fresh_names.push(t2);
        }
        let pred2 = Formula::from_bool_expr(&subst.apply_bool(pred));
        let q2 = subst.apply(&q);
        let feasible = pred2.clone().exists_many(fresh_names.iter().cloned());
        let all = pred2.implies(q2).forall_many(fresh_names);
        Ok(feasible.and(all))
    }

    /// WP of `x[index] = value`:
    /// `in_bounds(index) ∧ ∀cells. (read-over-write defs ⇒ Q′)`.
    fn wp_store(
        &mut self,
        x: &Var,
        index: &IntExpr,
        value: &IntExpr,
        q: Formula,
        context: &str,
    ) -> Result<Formula, VcgenError> {
        let in_bounds = Formula::from_bool_expr(
            &IntExpr::from(0)
                .le(index.clone())
                .and(index.clone().lt(IntExpr::Len(x.clone()))),
        );
        let (q2, cells) = abstract_selects(&q, x, &mut self.fresh, context)?;
        if cells.is_empty() {
            return Ok(in_bounds.and(q2));
        }
        // For each abstracted read x[j] (as cell v):
        //   (j == index ∧ v == value) ∨ (j != index ∧ v == x[j])
        let mut defs = Formula::True;
        let mut binders = Vec::new();
        for (j, v) in cells {
            let hit = Formula::from_bool_expr(
                &j.clone()
                    .eq_expr(index.clone())
                    .and(IntExpr::Var(v.clone()).eq_expr(value.clone())),
            );
            let miss = Formula::from_bool_expr(
                &j.clone()
                    .ne_expr(index.clone())
                    .and(IntExpr::Var(v.clone()).eq_expr(IntExpr::select(x.clone(), j.clone()))),
            );
            defs = defs.and(hit.or(miss));
            binders.push(v);
        }
        Ok(in_bounds.and(defs.implies(q2).forall_many(binders)))
    }
}

/// Generates the full VC set for `⊢logic {pre} s {post}`.
///
/// The returned obligations include the entry condition `pre ⇒ wp(s, post)`
/// plus every loop side condition.
///
/// # Errors
///
/// Propagates [`VcgenError`] from the calculus.
pub fn vcs_unary(
    logic: UnaryLogic,
    s: &Stmt,
    pre: &Formula,
    post: &Formula,
    array_vars: &BTreeSet<Var>,
) -> Result<Vec<Vc>, VcgenError> {
    let mut reserved: BTreeSet<Var> = s.all_vars();
    reserved.extend(relaxed_lang::free::formula_vars(pre));
    reserved.extend(relaxed_lang::free::formula_vars(post));
    let mut generator = UnaryVcgen::new(logic, array_vars.clone(), reserved);
    generator.seed_dep(fragment_id("post", &post.to_string()));
    let wp = generator.wp(s, post.clone(), "body")?;
    let mut entry_deps = generator.deps();
    entry_deps.push(fragment_id("pre", &pre.to_string()));
    entry_deps.sort();
    entry_deps.dedup();
    let mut vcs = generator.into_vcs();
    vcs.insert(
        0,
        Vc {
            name: "precondition-establishes-wp".to_string(),
            context: "entry".to_string(),
            body: VcBody::Unary(pre.clone().implies(wp)),
            deps: entry_deps,
        },
    );
    Ok(vcs)
}

/// Convenience: the free+bound variable names a statement can touch,
/// including predicate variables.
pub fn stmt_vars(s: &Stmt) -> BTreeSet<Var> {
    let mut vars = s.all_vars();
    if let Stmt::Havoc(_, pred) | Stmt::Relax(_, pred) = s {
        vars.extend(bool_expr_vars(pred));
    }
    vars
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::array_vars;
    use crate::encode::{encode_formula, EncodeCtx};
    use relaxed_lang::parse_stmt;
    use relaxed_smt::Solver;

    // Test-harness diagnostic: deliberately unconditional (not diag::warn,
    // which DISCHARGE_QUIET would swallow in a failing CI run).
    #[allow(clippy::print_stderr)]
    fn prove(vcs: &[Vc]) -> bool {
        let mut solver = Solver::new();
        vcs.iter().all(|vc| match &vc.body {
            VcBody::Unary(p) => {
                let encoded = encode_formula(p, &mut EncodeCtx::new());
                let verdict = solver.check_valid(&encoded);
                if !verdict.is_valid() {
                    eprintln!("failed VC {vc}: {verdict:?}");
                }
                verdict.is_valid()
            }
            VcBody::Rel(_) => unreachable!("unary generator emits unary bodies"),
        })
    }

    fn check(logic: UnaryLogic, src: &str, pre: &str, post: &str) -> bool {
        let s = parse_stmt(src).unwrap();
        let pre = relaxed_lang::parse_formula(pre).unwrap();
        let post = relaxed_lang::parse_formula(post).unwrap();
        let mut arrays = array_vars(&s);
        arrays.extend(crate::analysis::formula_array_vars(&pre));
        arrays.extend(crate::analysis::formula_array_vars(&post));
        let vcs = vcs_unary(logic, &s, &pre, &post, &arrays).unwrap();
        prove(&vcs)
    }

    #[test]
    fn straight_line_assignment() {
        assert!(check(
            UnaryLogic::Original,
            "y = x + 1;",
            "x >= 0",
            "y >= 1"
        ));
        assert!(!check(
            UnaryLogic::Original,
            "y = x + 1;",
            "x >= 0",
            "y >= 2"
        ));
    }

    #[test]
    fn assert_requires_proof_in_both_logics() {
        for logic in [UnaryLogic::Original, UnaryLogic::Intermediate] {
            assert!(check(logic, "assert x >= 0;", "x >= 1", "true"));
            assert!(!check(logic, "assert x >= 0;", "true", "true"));
        }
    }

    #[test]
    fn assume_differs_between_logics() {
        // ⊢o: the assumption is free.
        assert!(check(
            UnaryLogic::Original,
            "assume x >= 0; assert x >= 0;",
            "true",
            "true"
        ));
        // ⊢i: the assumption must be proved.
        assert!(!check(
            UnaryLogic::Intermediate,
            "assume x >= 0; assert x >= 0;",
            "true",
            "true"
        ));
        assert!(check(
            UnaryLogic::Intermediate,
            "assume x >= 0; assert x >= 0;",
            "x >= 0",
            "true"
        ));
    }

    #[test]
    fn relax_differs_between_logics() {
        // ⊢o: relax keeps the state; x stays 5.
        assert!(check(
            UnaryLogic::Original,
            "x = 5; relax (x) st (0 <= x && x <= 10);",
            "true",
            "x == 5"
        ));
        // ⊢i: relax havocs; only the predicate bound survives.
        assert!(!check(
            UnaryLogic::Intermediate,
            "x = 5; relax (x) st (0 <= x && x <= 10);",
            "true",
            "x == 5"
        ));
        assert!(check(
            UnaryLogic::Intermediate,
            "x = 5; relax (x) st (0 <= x && x <= 10);",
            "true",
            "0 <= x && x <= 10"
        ));
    }

    #[test]
    fn relax_asserts_predicate_in_original_logic() {
        // The original execution must satisfy the relaxation predicate.
        assert!(!check(
            UnaryLogic::Original,
            "x = 5; relax (x) st (x == 7);",
            "true",
            "true"
        ));
    }

    #[test]
    fn havoc_feasibility_is_demanded() {
        // havoc with an unsatisfiable predicate cannot verify (havoc-f / wr).
        assert!(!check(
            UnaryLogic::Original,
            "havoc (x) st (x < x);",
            "true",
            "true"
        ));
        assert!(check(
            UnaryLogic::Original,
            "havoc (x) st (0 <= x && x <= y);",
            "y >= 0",
            "0 <= x && x <= y"
        ));
    }

    #[test]
    fn if_both_branches() {
        assert!(check(
            UnaryLogic::Original,
            "if (x < 0) { y = 0 - x; } else { y = x; }",
            "true",
            "y >= 0"
        ));
    }

    #[test]
    fn while_with_invariant() {
        assert!(check(
            UnaryLogic::Original,
            "i = 0; s = 0;
             while (i < n) invariant (s >= 0 && 0 <= i && (i <= n || n < 0)) { s = s + i + 1; i = i + 1; }",
            "true",
            "n >= 0 ==> s >= 0"
        ));
    }

    #[test]
    fn missing_invariant_is_an_error() {
        let s = parse_stmt("while (x < 3) { x = x + 1; }").unwrap();
        let err = vcs_unary(
            UnaryLogic::Original,
            &s,
            &Formula::True,
            &Formula::True,
            &BTreeSet::new(),
        )
        .unwrap_err();
        assert!(matches!(err, VcgenError::MissingInvariant { .. }));
    }

    #[test]
    fn broken_invariant_fails() {
        assert!(!check(
            UnaryLogic::Original,
            "i = 0; while (i < n) invariant (i == 0) { i = i + 1; }",
            "true",
            "true"
        ));
    }

    #[test]
    fn store_bounds_and_read_over_write() {
        // Write then read back.
        assert!(check(
            UnaryLogic::Original,
            "a[i] = 7; x = a[i];",
            "0 <= i && i < len(a)",
            "x == 7"
        ));
        // Unproven bounds must fail.
        assert!(!check(UnaryLogic::Original, "a[i] = 7;", "true", "true"));
        // A different cell keeps its old value.
        assert!(check(
            UnaryLogic::Original,
            "a[i] = 7;",
            "0 <= i && i < len(a) && 0 <= j && j < len(a) && j != i && a[j] == 3",
            "a[j] == 3"
        ));
    }

    #[test]
    fn array_havoc_forgets_contents_but_keeps_length() {
        assert!(check(
            UnaryLogic::Intermediate,
            "relax (a) st (true);",
            "len(a) == 8",
            "len(a) == 8"
        ));
        assert!(!check(
            UnaryLogic::Intermediate,
            "relax (a) st (true); x = a[0];",
            "len(a) == 8 && a[0] == 1",
            "x == 1"
        ));
    }

    #[test]
    fn array_choice_with_predicate_rejected() {
        let s = parse_stmt("relax (a) st (a[0] > 0);").unwrap();
        let arrays = array_vars(&s);
        let err = vcs_unary(
            UnaryLogic::Intermediate,
            &s,
            &Formula::True,
            &Formula::True,
            &arrays,
        )
        .unwrap_err();
        assert!(matches!(err, VcgenError::ArrayChoiceWithPredicate { .. }));
    }

    #[test]
    fn relate_skips_in_original_errors_in_intermediate() {
        let s = parse_stmt("relate l : x<o> == x<r>;").unwrap();
        assert!(vcs_unary(
            UnaryLogic::Original,
            &s,
            &Formula::True,
            &Formula::True,
            &BTreeSet::new()
        )
        .is_ok());
        assert!(matches!(
            vcs_unary(
                UnaryLogic::Intermediate,
                &s,
                &Formula::True,
                &Formula::True,
                &BTreeSet::new()
            ),
            Err(VcgenError::RelateNotAllowed { .. })
        ));
    }
}
