//! Weakest-precondition VC generation for the axiomatic *relaxed*
//! semantics `⊢r` (Fig. 8) — the relational Hoare logic relating relaxed
//! executions to original executions in lockstep.
//!
//! Rule-by-rule correspondence (`Q*` is the relational postcondition):
//!
//! | statement | `wp` |
//! |---|---|
//! | `x = e` | `Q*[inj_o(e)/x<o>, inj_r(e)/x<r>]` (lockstep) |
//! | `relax (X) st e` | `inj_o(e) ⇒ (∃X′<r>. inj_r(e)′) ∧ (∀X′<r>. inj_r(e)′ ⇒ Q*′)` — only the relaxed side moves; the original side's `assert e` is assumed, having been discharged by `⊢o` |
//! | `assert e` / `assume e` | `inj_o(e) ⇒ inj_r(e) ∧ Q*` — relational transfer (the Fig. 8 premise `P* ∧ inj_o(e) ⇒ inj_r(e)`) |
//! | `relate l : e*` | `e* ∧ Q*` |
//! | `havoc (X) st e` | both sides move independently |
//! | convergent `if`/`while` | lockstep branching plus the convergence premise `inj_o(b) ⟺ inj_r(b)` |
//! | diverge-annotated `if`/`while` | the Fig. 8 **diverge** rule: unary `⊢o`/`⊢i` sub-proofs against the contract, `no_rel(s)`, and a relational frame over the modified variables |
//!
//! The diverge encoding quantifies fresh values for every variable either
//! side may modify and assumes only `⟨Qo · Qr⟩` about them — exactly the
//! paper's "all relationships between the two semantics are lost and must
//! be reestablished", while unmodified variables keep their relational
//! facts (the relational frame rule the paper appeals to).

use super::arrays::abstract_rel_selects;
use super::unary::{vcs_unary, UnaryLogic};
use super::vc::{Vc, VcBody, VcgenError};
use crate::depmap::fragment_id;
use relaxed_lang::subst::{FreshVars, RelSubst};
use relaxed_lang::{
    BoolExpr, DivergeContract, Formula, IntExpr, RelFormula, RelIntExpr, Side, Stmt, Var,
};
use std::collections::BTreeSet;

/// The relational WP engine.
#[derive(Debug)]
pub struct RelVcgen {
    fresh: FreshVars,
    array_vars: BTreeSet<Var>,
    vcs: Vec<Vc>,
    /// Fragment ids the formula under construction was built from — the
    /// relational twin of the unary generator's trail (see
    /// [`crate::depmap`]). Unlike `⊢o`, a `relax` here contributes its
    /// *whole* statement (the relaxed side havocs the target list, so
    /// editing the targets changes `⊢r` goals), and `relate` contributes
    /// too (it is an obligation, not a skip).
    trail: BTreeSet<String>,
}

fn inj(p: &Formula, side: Side) -> RelFormula {
    RelFormula::inject(p, side)
}

fn inj_bool(b: &BoolExpr, side: Side) -> RelFormula {
    RelFormula::inject(&Formula::from_bool_expr(b), side)
}

impl RelVcgen {
    /// Creates an engine; `array_vars` routes array targets, `reserved`
    /// seeds the fresh-name allocator.
    pub fn new(array_vars: BTreeSet<Var>, reserved: BTreeSet<Var>) -> Self {
        let mut fresh = FreshVars::new();
        fresh.reserve(reserved);
        RelVcgen {
            fresh,
            array_vars,
            vcs: Vec::new(),
            trail: BTreeSet::new(),
        }
    }

    /// The side conditions accumulated so far.
    pub fn into_vcs(self) -> Vec<Vc> {
        self.vcs
    }

    /// Seeds the trail with a fragment the surrounding context
    /// contributes before traversal starts (the relational
    /// postcondition).
    pub fn seed_dep(&mut self, fragment: String) {
        self.trail.insert(fragment);
    }

    /// The current trail, sorted (BTreeSet iteration order).
    fn deps(&self) -> Vec<String> {
        self.trail.iter().cloned().collect()
    }

    fn push_vc(&mut self, name: &str, context: &str, body: RelFormula) {
        let deps = self.deps();
        self.push_vc_with(name, context, body, deps);
    }

    fn push_vc_with(&mut self, name: &str, context: &str, body: RelFormula, deps: Vec<String>) {
        self.vcs.push(Vc {
            name: name.to_string(),
            context: context.to_string(),
            body: VcBody::Rel(body),
            deps,
        });
    }

    /// `wp_r(s, q)` plus accumulated side conditions.
    ///
    /// # Errors
    ///
    /// See [`VcgenError`]. Convergent loops need `rinvariant`; diverging
    /// statements need a `diverge` contract and must satisfy `no_rel`.
    pub fn wp(&mut self, s: &Stmt, q: RelFormula, context: &str) -> Result<RelFormula, VcgenError> {
        // Every leaf statement's text enters the relational trail whole:
        // relax targets are havocked on the relaxed side and relate is an
        // obligation here, so — unlike `⊢o` — editing any part of these
        // statements can change a `⊢r` goal.
        match s {
            Stmt::Assign(_, _)
            | Stmt::Store(_, _, _)
            | Stmt::Havoc(_, _)
            | Stmt::Relax(_, _)
            | Stmt::Assume(_)
            | Stmt::Assert(_)
            | Stmt::Relate(_, _) => {
                self.trail.insert(fragment_id("stmt", &s.to_string()));
            }
            Stmt::Skip | Stmt::If(_) | Stmt::While(_) | Stmt::Seq(_) => {}
        }
        match s {
            Stmt::Skip => Ok(q),
            Stmt::Assign(x, e) => {
                let mut subst = RelSubst::new();
                subst.insert(
                    x.clone(),
                    Side::Original,
                    RelIntExpr::inject(e, Side::Original),
                );
                subst.insert(
                    x.clone(),
                    Side::Relaxed,
                    RelIntExpr::inject(e, Side::Relaxed),
                );
                Ok(subst.apply(&q))
            }
            Stmt::Store(x, index, value) => {
                let q = self.wp_rel_store(x, index, value, q, Side::Original, context)?;
                self.wp_rel_store(x, index, value, q, Side::Relaxed, context)
            }
            Stmt::Havoc(targets, pred) => {
                // Both executions choose independently.
                let q = self.wp_side_choice(targets, pred, q, Side::Original, context)?;
                self.wp_side_choice(targets, pred, q, Side::Relaxed, context)
            }
            Stmt::Relax(targets, pred) => {
                // Fig. 8 relax: only the relaxed side is reassigned. The
                // original side's `assert e` outcome is assumed (it is an
                // obligation of the ⊢o proof, and ⊨r only speaks about
                // pairs of successful executions).
                let inner = self.wp_side_choice(targets, pred, q, Side::Relaxed, context)?;
                Ok(inj_bool(pred, Side::Original).implies(inner))
            }
            Stmt::Assume(pred) | Stmt::Assert(pred) => {
                // Relational transfer: if the original execution passed the
                // predicate, the relaxed execution must too.
                Ok(inj_bool(pred, Side::Original).implies(inj_bool(pred, Side::Relaxed).and(q)))
            }
            Stmt::Relate(_, pred) => Ok(RelFormula::from_rel_bool_expr(pred).and(q)),
            Stmt::If(i) => match &i.diverge {
                Some(contract) => self.wp_diverge(s, contract, q, context),
                // Straight-line, relate-free branches admit the *product*
                // rule (full relational case analysis over the four branch
                // combinations, as in Benton's RHL); it subsumes the
                // convergent-if rule and needs no convergence premise.
                None if straight_line(&i.then_branch) && straight_line(&i.else_branch) => {
                    self.trail.insert(fragment_id("cond", &i.cond.to_string()));
                    let bo = inj_bool(&i.cond, Side::Original);
                    let br = inj_bool(&i.cond, Side::Relaxed);
                    let mut out = RelFormula::True;
                    for (go, so) in [(true, &i.then_branch), (false, &i.else_branch)] {
                        for (gr, sr) in [(true, &i.then_branch), (false, &i.else_branch)] {
                            let guard_o = if go { bo.clone() } else { bo.clone().not() };
                            let guard_r = if gr { br.clone() } else { br.clone().not() };
                            let ctx = format!("{context}/product-{go}{gr}");
                            let inner = self.wp_one_side(sr, Side::Relaxed, q.clone(), &ctx)?;
                            let both = self.wp_one_side(so, Side::Original, inner, &ctx)?;
                            out = out.and(guard_o.and(guard_r).implies(both));
                        }
                    }
                    Ok(out)
                }
                None => {
                    self.trail.insert(fragment_id("cond", &i.cond.to_string()));
                    let then_ctx = format!("{context}/if-then");
                    let else_ctx = format!("{context}/if-else");
                    let wp_then = self.wp(&i.then_branch, q.clone(), &then_ctx)?;
                    let wp_else = self.wp(&i.else_branch, q, &else_ctx)?;
                    let bo = inj_bool(&i.cond, Side::Original);
                    let br = inj_bool(&i.cond, Side::Relaxed);
                    // Convergence: both executions take the same branch.
                    let conv = bo
                        .clone()
                        .implies(br.clone())
                        .and(br.clone().implies(bo.clone()));
                    let both_true = bo.clone().and(br.clone());
                    let both_false = bo.not().and(br.not());
                    Ok(conv
                        .and(both_true.implies(wp_then))
                        .and(both_false.implies(wp_else)))
                }
            },
            Stmt::While(w) => match &w.diverge {
                Some(contract) => self.wp_diverge(s, contract, q, context),
                None => {
                    let inv = w
                        .rel_invariant
                        .clone()
                        .ok_or(VcgenError::MissingInvariant {
                            kind: "rinvariant",
                            context: context.to_string(),
                        })?;
                    // The loop's own obligations depend only on the loop:
                    // run the body on an isolated trail seeded with the
                    // condition and rinvariant, so `loop-convergence` and
                    // `rinvariant-preserved` never blame downstream
                    // fragments already in the outer trail.
                    let outer_trail = std::mem::take(&mut self.trail);
                    self.trail.insert(fragment_id("cond", &w.cond.to_string()));
                    self.trail.insert(fragment_id("rinv", &inv.to_string()));
                    let conv_deps = self.deps();
                    let body_ctx = format!("{context}/while-body");
                    let body_wp = match self.wp(&w.body, inv.clone(), &body_ctx) {
                        Ok(f) => f,
                        Err(e) => {
                            self.trail.extend(outer_trail);
                            return Err(e);
                        }
                    };
                    let bo = inj_bool(&w.cond, Side::Original);
                    let br = inj_bool(&w.cond, Side::Relaxed);
                    let conv = bo
                        .clone()
                        .implies(br.clone())
                        .and(br.clone().implies(bo.clone()));
                    let both_true = bo.clone().and(br.clone());
                    let both_false = bo.not().and(br.not());
                    self.push_vc_with(
                        "loop-convergence",
                        context,
                        inv.clone().implies(conv),
                        conv_deps,
                    );
                    self.push_vc(
                        "rinvariant-preserved",
                        context,
                        inv.clone().and(both_true).implies(body_wp),
                    );
                    // The exit formula embeds q, so the outer fragments
                    // return to the trail the enclosing obligations snapshot.
                    self.trail.extend(outer_trail);
                    // Exit, framed over the modified variables of each side.
                    let mut exit = inv.clone().and(both_false).implies(q);
                    let modified_o = w.body.modified_vars_original();
                    let modified_r = w.body.modified_vars();
                    let mut subst = RelSubst::new();
                    let mut binders: Vec<(Var, Side)> = Vec::new();
                    let mut touched_arrays: Vec<(Var, Side)> = Vec::new();
                    for (vars, side) in
                        [(&modified_o, Side::Original), (&modified_r, Side::Relaxed)]
                    {
                        for v in vars.iter() {
                            if self.array_vars.contains(v) {
                                touched_arrays.push((v.clone(), side));
                            } else {
                                let v2 = self.fresh.fresh(v);
                                subst.insert(v.clone(), side, RelIntExpr::Var(v2.clone(), side));
                                binders.push((v2, side));
                            }
                        }
                    }
                    exit = subst.apply(&exit);
                    for (a, side) in touched_arrays {
                        let (exit2, cells) =
                            abstract_rel_selects(&exit, &a, side, &mut self.fresh, context)?;
                        exit = exit2;
                        binders.extend(cells.into_iter().map(|(_, v)| (v, side)));
                    }
                    for (v, side) in binders {
                        exit = exit.forall(v, side);
                    }
                    Ok(inv.and(exit))
                }
            },
            Stmt::Seq(stmts) => {
                let mut q = q;
                for (i, s) in stmts.iter().enumerate().rev() {
                    let ctx = format!("{context}/{i}");
                    q = self.wp(s, q, &ctx)?;
                }
                Ok(q)
            }
        }
    }

    /// One-sided weakest precondition: `side`'s execution runs `s` while
    /// the other side stands still — the building block of the product
    /// rule for diverged branches.
    ///
    /// `assert`/`assume` on the original side are assumptions (their
    /// obligations belong to `⊢o`); on the relaxed side they are proof
    /// obligations, exactly as in the intermediate semantics `⊢i`.
    fn wp_one_side(
        &mut self,
        s: &Stmt,
        side: Side,
        q: RelFormula,
        context: &str,
    ) -> Result<RelFormula, VcgenError> {
        // Same whole-statement granularity as `wp`: a product formula
        // genuinely depends on the full leaf text via at least one of the
        // two sides, and the trail is per-VC, not per-side.
        match s {
            Stmt::Assign(_, _)
            | Stmt::Store(_, _, _)
            | Stmt::Havoc(_, _)
            | Stmt::Relax(_, _)
            | Stmt::Assume(_)
            | Stmt::Assert(_) => {
                self.trail.insert(fragment_id("stmt", &s.to_string()));
            }
            Stmt::If(i) => {
                self.trail.insert(fragment_id("cond", &i.cond.to_string()));
            }
            Stmt::Skip | Stmt::Relate(_, _) | Stmt::While(_) | Stmt::Seq(_) => {}
        }
        match s {
            Stmt::Skip => Ok(q),
            Stmt::Assign(x, e) => {
                let subst = RelSubst::single(x.clone(), side, RelIntExpr::inject(e, side));
                Ok(subst.apply(&q))
            }
            Stmt::Store(x, index, value) => self.wp_rel_store(x, index, value, q, side, context),
            Stmt::Havoc(targets, pred) => self.wp_side_choice(targets, pred, q, side, context),
            Stmt::Relax(targets, pred) => match side {
                Side::Original => Ok(inj_bool(pred, Side::Original).implies(q)),
                Side::Relaxed => self.wp_side_choice(targets, pred, q, side, context),
            },
            Stmt::Assume(pred) | Stmt::Assert(pred) => match side {
                Side::Original => Ok(inj_bool(pred, Side::Original).implies(q)),
                Side::Relaxed => Ok(inj_bool(pred, Side::Relaxed).and(q)),
            },
            Stmt::Relate(_, _) => Err(VcgenError::RelateNotAllowed {
                context: format!("{context} (inside a product branch)"),
            }),
            Stmt::If(i) => {
                let b = inj_bool(&i.cond, side);
                let wp_then = self.wp_one_side(&i.then_branch, side, q.clone(), context)?;
                let wp_else = self.wp_one_side(&i.else_branch, side, q, context)?;
                Ok(b.clone().implies(wp_then).and(b.not().implies(wp_else)))
            }
            Stmt::While(_) => Err(VcgenError::MissingInvariant {
                kind: "diverge contract (loop inside a product branch)",
                context: context.to_string(),
            }),
            Stmt::Seq(stmts) => {
                let mut q = q;
                for s in stmts.iter().rev() {
                    q = self.wp_one_side(s, side, q, context)?;
                }
                Ok(q)
            }
        }
    }

    /// One-sided choice: the `side` execution reassigns `targets` subject
    /// to `pred` (used by `relax` on the relaxed side and by `havoc` on
    /// each side in turn).
    fn wp_side_choice(
        &mut self,
        targets: &[Var],
        pred: &BoolExpr,
        q: RelFormula,
        side: Side,
        context: &str,
    ) -> Result<RelFormula, VcgenError> {
        let (ints, arrays): (Vec<_>, Vec<_>) =
            targets.iter().partition(|t| !self.array_vars.contains(*t));
        if !arrays.is_empty() && *pred != BoolExpr::Const(true) {
            return Err(VcgenError::ArrayChoiceWithPredicate {
                context: context.to_string(),
            });
        }
        let mut q = q;
        for a in arrays {
            let (q2, cells) = abstract_rel_selects(&q, a, side, &mut self.fresh, context)?;
            let mut q3 = q2;
            for (_, cell) in cells {
                q3 = q3.forall(cell, side);
            }
            q = q3;
        }
        if ints.is_empty() {
            return Ok(q);
        }
        let mut subst = RelSubst::new();
        let mut fresh_names = Vec::new();
        for t in &ints {
            let t2 = self.fresh.fresh(t);
            subst.insert((*t).clone(), side, RelIntExpr::Var(t2.clone(), side));
            fresh_names.push(t2);
        }
        let pred2 = subst.apply(&inj_bool(pred, side));
        let q2 = subst.apply(&q);
        let mut feasible = pred2.clone();
        let mut all = pred2.implies(q2);
        for name in fresh_names {
            feasible = feasible.exists(name.clone(), side);
            all = all.forall(name, side);
        }
        Ok(feasible.and(all))
    }

    /// Lockstep store on one side of the pair.
    fn wp_rel_store(
        &mut self,
        x: &Var,
        index: &IntExpr,
        value: &IntExpr,
        q: RelFormula,
        side: Side,
        context: &str,
    ) -> Result<RelFormula, VcgenError> {
        let index_s = RelIntExpr::inject(index, side);
        let value_s = RelIntExpr::inject(value, side);
        let in_bounds: RelFormula = RelIntExpr::Const(0)
            .le(index_s.clone())
            .and(index_s.clone().lt(RelIntExpr::Len(x.clone(), side)))
            .into();
        let (q2, cells) = abstract_rel_selects(&q, x, side, &mut self.fresh, context)?;
        if cells.is_empty() {
            return Ok(in_bounds.and(q2));
        }
        let mut defs = RelFormula::True;
        let mut binders = Vec::new();
        for (j, v) in cells {
            let cell = RelIntExpr::Var(v.clone(), side);
            let hit: RelFormula = j
                .clone()
                .eq_expr(index_s.clone())
                .and(cell.clone().eq_expr(value_s.clone()))
                .into();
            let miss: RelFormula = j
                .clone()
                .cmp(relaxed_lang::CmpOp::Ne, index_s.clone())
                .and(cell.eq_expr(RelIntExpr::Select(x.clone(), side, Box::new(j.clone()))))
                .into();
            defs = defs.and(hit.or(miss));
            binders.push(v);
        }
        let mut framed = defs.implies(q2);
        for v in binders {
            framed = framed.forall(v, side);
        }
        Ok(in_bounds.and(framed))
    }

    /// The Fig. 8 **diverge** rule.
    fn wp_diverge(
        &mut self,
        s: &Stmt,
        contract: &DivergeContract,
        q: RelFormula,
        context: &str,
    ) -> Result<RelFormula, VcgenError> {
        if !s.no_rel() {
            return Err(VcgenError::RelateNotAllowed {
                context: format!("{context} (inside a diverge statement)"),
            });
        }
        // The relational frame quantifies over whatever either side may
        // modify — a property of the whole diverged statement including
        // its contract, so the entire text is one fragment. The unary
        // sub-obligations pushed below carry their own finer-grained
        // trails from `vcs_unary`.
        self.trail.insert(fragment_id("stmt", &s.to_string()));
        let po = contract.pre_o.clone().unwrap_or(Formula::True);
        let pr = contract.pre_r.clone().unwrap_or(Formula::True);
        // ⊢o {Po} s {Qo} — the original side alone.
        for mut vc in vcs_unary(
            UnaryLogic::Original,
            s,
            &po,
            &contract.post_o,
            &self.array_vars,
        )? {
            vc.context = format!("{context}/diverge-original/{}", vc.context);
            self.vcs.push(vc);
        }
        // ⊢i {Pr} s {Qr} — the relaxed side alone, via the intermediate
        // semantics.
        for mut vc in vcs_unary(
            UnaryLogic::Intermediate,
            s,
            &pr,
            &contract.post_r,
            &self.array_vars,
        )? {
            vc.context = format!("{context}/diverge-intermediate/{}", vc.context);
            self.vcs.push(vc);
        }
        // Relational frame: quantify fresh values for everything either
        // side may modify; assume only ⟨Qo · Qr⟩ about them.
        let modified_o = s.modified_vars_original();
        let modified_r = s.modified_vars();
        let mut f = inj(&contract.post_o, Side::Original)
            .and(inj(&contract.post_r, Side::Relaxed))
            .implies(q);
        let mut subst = RelSubst::new();
        let mut binders: Vec<(Var, Side)> = Vec::new();
        let mut arrays_to_forget: Vec<(Var, Side)> = Vec::new();
        for (vars, side) in [(&modified_o, Side::Original), (&modified_r, Side::Relaxed)] {
            for v in vars.iter() {
                if self.array_vars.contains(v) {
                    arrays_to_forget.push((v.clone(), side));
                } else {
                    let v2 = self.fresh.fresh(v);
                    subst.insert(v.clone(), side, RelIntExpr::Var(v2.clone(), side));
                    binders.push((v2, side));
                }
            }
        }
        f = subst.apply(&f);
        for (a, side) in arrays_to_forget {
            let (f2, cells) = abstract_rel_selects(&f, &a, side, &mut self.fresh, context)?;
            f = f2;
            binders.extend(cells.into_iter().map(|(_, v)| (v, side)));
        }
        for (v, side) in binders {
            f = f.forall(v, side);
        }
        Ok(inj(&po, Side::Original).and(inj(&pr, Side::Relaxed)).and(f))
    }
}

/// Whether a statement is loop-free and relate-free (product-rule
/// eligible).
fn straight_line(s: &Stmt) -> bool {
    match s {
        Stmt::Skip
        | Stmt::Assign(_, _)
        | Stmt::Store(_, _, _)
        | Stmt::Havoc(_, _)
        | Stmt::Relax(_, _)
        | Stmt::Assume(_)
        | Stmt::Assert(_) => true,
        Stmt::Relate(_, _) | Stmt::While(_) => false,
        Stmt::If(i) => straight_line(&i.then_branch) && straight_line(&i.else_branch),
        Stmt::Seq(ss) => ss.iter().all(straight_line),
    }
}

/// Generates the full VC set for `⊢r {rel_pre} s {rel_post}`.
///
/// # Errors
///
/// Propagates [`VcgenError`] from the calculus.
pub fn vcs_relaxed(
    s: &Stmt,
    rel_pre: &RelFormula,
    rel_post: &RelFormula,
    array_vars: &BTreeSet<Var>,
) -> Result<Vec<Vc>, VcgenError> {
    let mut reserved: BTreeSet<Var> = s.all_vars();
    reserved.extend(relaxed_lang::free::rel_formula_var_names(rel_pre));
    reserved.extend(relaxed_lang::free::rel_formula_var_names(rel_post));
    let mut generator = RelVcgen::new(array_vars.clone(), reserved);
    generator.seed_dep(fragment_id("rel_post", &rel_post.to_string()));
    let wp = generator.wp(s, rel_post.clone(), "body")?;
    let mut entry_deps = generator.deps();
    entry_deps.push(fragment_id("rel_pre", &rel_pre.to_string()));
    entry_deps.sort();
    entry_deps.dedup();
    let mut vcs = generator.into_vcs();
    vcs.insert(
        0,
        Vc {
            name: "precondition-establishes-wp".to_string(),
            context: "entry".to_string(),
            body: VcBody::Rel(rel_pre.clone().implies(wp)),
            deps: entry_deps,
        },
    );
    Ok(vcs)
}

/// `⋀_{v ∈ vars} v<o> == v<r>` — the standard "identical initial states"
/// relational precondition (with array variables synchronized pointwise
/// via lengths and universally-quantified indices).
pub fn sync_vars<'a>(
    vars: impl IntoIterator<Item = &'a Var>,
    array_vars: &BTreeSet<Var>,
) -> RelFormula {
    let mut out = RelFormula::True;
    for v in vars {
        if array_vars.contains(v) {
            out = out.and(sync_array(v));
        } else {
            out = out.and(relaxed_lang::RelBoolExpr::var_sync(v.clone()).into());
        }
    }
    out
}

/// Pointwise synchronization of one array variable:
/// `len(a<o>) == len(a<r>) ∧ ∀i. a<o>[i] == a<r>[i]`.
pub fn sync_array(v: &Var) -> RelFormula {
    let i = Var::new(format!("{}_sync_i", v.name()));
    let lens: RelFormula = RelIntExpr::Len(v.clone(), Side::Original)
        .eq_expr(RelIntExpr::Len(v.clone(), Side::Relaxed))
        .into();
    let cells: RelFormula = RelIntExpr::Select(
        v.clone(),
        Side::Original,
        Box::new(RelIntExpr::Var(i.clone(), Side::Original)),
    )
    .eq_expr(RelIntExpr::Select(
        v.clone(),
        Side::Relaxed,
        Box::new(RelIntExpr::Var(i.clone(), Side::Original)),
    ))
    .into();
    lens.and(cells.forall(i, Side::Original))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::array_vars;
    use crate::encode::{encode_rel_formula, EncodeCtx};
    use relaxed_lang::{parse_rel_formula, parse_stmt};
    use relaxed_smt::Solver;

    // Test-harness diagnostic: deliberately unconditional (not diag::warn,
    // which DISCHARGE_QUIET would swallow in a failing CI run).
    #[allow(clippy::print_stderr)]
    fn prove(vcs: &[Vc]) -> bool {
        let mut solver = Solver::new();
        vcs.iter().all(|vc| {
            let valid = match &vc.body {
                VcBody::Rel(p) => {
                    let encoded = encode_rel_formula(p, &mut EncodeCtx::new());
                    solver.check_valid(&encoded)
                }
                VcBody::Unary(p) => {
                    let encoded = crate::encode::encode_formula(p, &mut EncodeCtx::new());
                    solver.check_valid(&encoded)
                }
            };
            if !valid.is_valid() {
                eprintln!("failed VC {vc}: {valid:?}");
            }
            valid.is_valid()
        })
    }

    fn check(src: &str, pre: &str, post: &str) -> bool {
        let s = parse_stmt(src).unwrap();
        let pre = parse_rel_formula(pre).unwrap();
        let post = parse_rel_formula(post).unwrap();
        let mut arrays = array_vars(&s);
        arrays.extend(crate::analysis::rel_formula_array_vars(&pre));
        arrays.extend(crate::analysis::rel_formula_array_vars(&post));
        let vcs = vcs_relaxed(&s, &pre, &post, &arrays).unwrap();
        prove(&vcs)
    }

    #[test]
    fn lockstep_assignment_preserves_sync() {
        assert!(check("y = x + 1;", "x<o> == x<r>", "y<o> == y<r>"));
    }

    #[test]
    fn relax_bounds_difference() {
        // After relax (x) st (x0 - 1 <= x <= x0 + 1) with saved x0:
        // |x<o> - x<r>| ≤ 1 (the original side keeps x == x0).
        assert!(check(
            "x0 = x; relax (x) st (x0 - 1 <= x && x <= x0 + 1);",
            "x<o> == x<r>",
            "x<o> - x<r> <= 1 && x<r> - x<o> <= 1"
        ));
        // But not a zero bound.
        assert!(!check(
            "x0 = x; relax (x) st (x0 - 1 <= x && x <= x0 + 1);",
            "x<o> == x<r>",
            "x<o> == x<r>"
        ));
    }

    #[test]
    fn assert_transfers_via_noninterference() {
        // x is never relaxed, so x<o> == x<r> carries the assert across.
        assert!(check(
            "relax (y) st (0 <= y && y <= 5); assert x >= 0;",
            "x<o> == x<r>",
            "true"
        ));
        // If x itself is relaxed the transfer must fail.
        assert!(!check(
            "relax (x) st (x - 1 <= x || true); assert x >= 0;",
            "x<o> == x<r>",
            "true"
        ));
    }

    #[test]
    fn relate_requires_proof() {
        assert!(check(
            "x0 = x; relax (x) st (x0 <= x && x <= x0 + 2);
             relate l1 : x<o> <= x<r>;",
            "x<o> == x<r>",
            "true"
        ));
        assert!(!check(
            "x0 = x; relax (x) st (x0 <= x && x <= x0 + 2);
             relate l1 : x<r> <= x<o>;",
            "x<o> == x<r>",
            "true"
        ));
    }

    #[test]
    fn convergent_if_requires_equal_branching() {
        // Condition on an unsynchronized variable: convergence unprovable.
        assert!(!check(
            "relax (x) st (true); if (x > 0) { y = 1; } else { y = 2; }",
            "x<o> == x<r> && y<o> == y<r>",
            "y<o> == y<r>"
        ));
        // Condition on a synchronized variable: fine.
        assert!(check(
            "if (z > 0) { y = 1; } else { y = 2; }",
            "z<o> == z<r>",
            "y<o> == y<r>"
        ));
    }

    #[test]
    fn convergent_while_with_rinvariant() {
        assert!(check(
            "i = 0;
             while (i < n) rinvariant (i<o> == i<r> && n<o> == n<r>) {
               i = i + 1;
             }",
            "n<o> == n<r>",
            "i<o> == i<r>"
        ));
    }

    #[test]
    fn missing_rinvariant_is_an_error() {
        let s = parse_stmt("while (i < n) { i = i + 1; }").unwrap();
        let err =
            vcs_relaxed(&s, &RelFormula::True, &RelFormula::True, &BTreeSet::new()).unwrap_err();
        assert!(matches!(
            err,
            VcgenError::MissingInvariant {
                kind: "rinvariant",
                ..
            }
        ));
    }

    #[test]
    fn diverge_rule_reestablishes_via_contracts() {
        // A loop whose iteration count depends on the relaxed variable:
        // the diverge rule with unary contracts proves a bound on i.
        let src = "
            relax (m) st (5 <= m && m <= 10);
            i = 0;
            while (i < m)
              invariant (i <= m && 5 <= m && m <= 10)
              diverge pre_o (i == 0 && 5 <= m && m <= 10)
                      pre_r (i == 0 && 5 <= m && m <= 10)
                      post_o (i == m && 5 <= m && m <= 10)
                      post_r (i == m && 5 <= m && m <= 10)
            {
              i = i + 1;
            }";
        assert!(check(
            src,
            "m<o> == m<r> && i<o> == i<r> && 5 <= m<o> && m<o> <= 10",
            "5 <= i<o> && i<o> <= 10 && 5 <= i<r> && i<r> <= 10"
        ));
        // The relational claim i<o> == i<r> is NOT derivable (the two runs
        // loop different numbers of times).
        assert!(!check(
            src,
            "m<o> == m<r> && i<o> == i<r> && 5 <= m<o> && m<o> <= 10",
            "i<o> == i<r>"
        ));
    }

    #[test]
    fn diverge_frames_untouched_variables() {
        let src = "
            relax (m) st (0 <= m && m <= 3);
            i = 0;
            while (i < m)
              invariant (true)
              diverge post_o (true) post_r (true)
            {
              i = i + 1;
            }";
        // z is untouched by the loop: its synchronization survives.
        assert!(check(src, "z<o> == z<r>", "z<o> == z<r>"));
        // i is modified: its synchronization must NOT survive.
        assert!(!check(src, "z<o> == z<r> && i<o> == i<r>", "i<o> == i<r>"));
    }

    #[test]
    fn relate_inside_diverge_is_rejected() {
        let src = "
            while (i < m)
              invariant (true)
              diverge post_o (true) post_r (true)
            {
              relate l : i<o> == i<r>;
              i = i + 1;
            }";
        let s = parse_stmt(src).unwrap();
        let err =
            vcs_relaxed(&s, &RelFormula::True, &RelFormula::True, &BTreeSet::new()).unwrap_err();
        assert!(matches!(err, VcgenError::RelateNotAllowed { .. }));
    }

    #[test]
    fn havoc_moves_both_sides() {
        // havoc picks independently on each side; only the predicate holds.
        assert!(check(
            "havoc (x) st (0 <= x && x <= 3);",
            "true",
            "0 <= x<o> && x<o> <= 3 && 0 <= x<r> && x<r> <= 3"
        ));
        assert!(!check(
            "havoc (x) st (0 <= x && x <= 3);",
            "true",
            "x<o> == x<r>"
        ));
    }
}
