//! Automated verification-condition generation for the three axiomatic
//! semantics of the paper: `⊢o` (Fig. 7), `⊢i` (Fig. 9) — both in
//! [`unary`] — and `⊢r` (Fig. 8) in [`relational`].
//!
//! The generators are weakest-precondition calculi over annotated
//! programs: loop invariants (`invariant`, `rinvariant`) and divergence
//! contracts (`diverge pre_o/pre_r/post_o/post_r`) play the role the Coq
//! proof scripts play in the paper's artifact. Every emitted [`Vc`] is a
//! formula whose validity the `relaxed-smt` solver decides.

pub mod arrays;
pub mod relational;
pub mod unary;
mod vc;

pub use relational::{sync_array, sync_vars, vcs_relaxed, RelVcgen};
pub use unary::{vcs_unary, UnaryLogic, UnaryVcgen};
pub use vc::{formula_conjuncts, Vc, VcBody, VcgenError};
