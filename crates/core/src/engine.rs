//! The parallel, deduplicating VC discharge engine.
//!
//! The paper's staged methodology (`⊢o`, then `⊢i`, then `⊢r`) generates
//! many verification conditions per program, and the obligations are
//! mutually independent: each is a closed validity query. The engine
//! exploits that independence twice over:
//!
//! 1. **Structural deduplication.** Every obligation is encoded with a
//!    fresh [`EncodeCtx`], so the per-goal bound-variable numbering
//!    restarts at zero and two occurrences of the same obligation encode
//!    to structurally identical [`BTerm`]s. (Bound names keep their
//!    source identifier — `x!b0` — so goals that differ only by binder
//!    *names* are not identified; the duplicates the VC generator emits
//!    are verbatim re-proofs, which this canonical form catches.) The
//!    encoded goal is the key of a verdict cache shared
//!    across every discharge call made through one engine — in particular
//!    across the `⊢o` and `⊢r` stages of
//!    [`Verifier::check`](crate::api::Verifier::check), whose diverge
//!    sub-proofs re-prove many of the `⊢o` stage's unary goals verbatim,
//!    and across the programs of a
//!    [`Verifier::check_corpus`](crate::api::Verifier::check_corpus)
//!    batch.
//! 2. **Parallel discharge.** The unique, uncached goals are solved on a
//!    [`std::thread::scope`] worker pool, one fresh [`Solver`] per goal.
//!    Results are reassembled in generation order, so a [`Report`] is
//!    byte-for-byte identical regardless of scheduling.
//!
//! Worker count and solver budgets come from [`DischargeConfig`]. The
//! engine itself never reads the process environment; the
//! `DISCHARGE_WORKERS`, `DISCHARGE_CONFLICTS` and `DISCHARGE_BRANCH_BUDGET`
//! variables are applied only through the explicit opt-in layer
//! [`Config::from_env`](crate::api::Config::from_env).

use crate::cache::{self, CacheWarning, GoalKey};
use crate::encode::{encode_formula, encode_rel_formula, EncodeCtx};
use crate::vcgen::{Vc, VcBody};
use crate::verify::{Report, VcResult};
use relaxed_smt::ast::BTerm;
use relaxed_smt::{Solver, SolverStats, Validity};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Tuning knobs for a [`DischargeEngine`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DischargeConfig {
    /// Worker threads for parallel discharge; `0` means one per
    /// available core.
    pub workers: usize,
    /// CDCL conflict budget per goal (see [`Solver::max_conflicts`]).
    pub max_conflicts: u64,
    /// Branch-and-bound node budget per theory check (see
    /// [`Solver::branch_budget`]).
    pub branch_budget: u64,
}

impl Default for DischargeConfig {
    fn default() -> Self {
        let defaults = Solver::default();
        DischargeConfig {
            workers: 0,
            max_conflicts: defaults.max_conflicts,
            branch_budget: defaults.branch_budget,
        }
    }
}

impl DischargeConfig {
    /// The default configuration with environment overrides applied.
    ///
    /// Parse failures are silently dropped here; prefer
    /// [`Config::from_env`](crate::api::Config::from_env), which reports
    /// them.
    #[deprecated(note = "use `relaxed_core::Config::from_env` (the typed session config) instead")]
    pub fn from_env() -> Self {
        crate::api::Config::from_env().0.discharge_config()
    }

    /// A single-worker (fully sequential) configuration.
    pub fn sequential() -> Self {
        DischargeConfig {
            workers: 1,
            ..DischargeConfig::default()
        }
    }

    /// The default configuration pinned to `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        DischargeConfig {
            workers,
            ..DischargeConfig::default()
        }
    }

    /// The configured worker count with `0` (auto) resolved to the number
    /// of available cores.
    pub fn effective_parallelism(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        }
    }

    /// The thread count a discharge of `goals` unsolved goals will use.
    fn effective_workers(&self, goals: usize) -> usize {
        self.effective_parallelism().min(goals).max(1)
    }
}

/// Cache and throughput counters for a [`DischargeEngine`] (or, on a
/// [`Report`], for one discharge call).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Obligations answered from the verdict cache (including duplicates
    /// deduplicated within a single discharge call).
    pub cache_hits: u64,
    /// Obligations that required a solver run.
    pub cache_misses: u64,
    /// Cache hits whose verdict was first inserted under a different
    /// [`DischargeOptions::owner`] tag. The corpus driver
    /// ([`Verifier::check_corpus`](crate::api::Verifier::check_corpus))
    /// tags each program with its own owner, so this counts verdicts
    /// reused *across programs*; untagged discharge calls all share owner
    /// `0` and report `0` here.
    pub cross_hits: u64,
    /// Cache hits answered by a verdict loaded from the on-disk store
    /// (a subset of `cache_hits`) — the across-run payoff of
    /// [`CachePolicy::Persistent`](crate::api::CachePolicy::Persistent).
    pub disk_hits: u64,
    /// Verdicts loaded from the on-disk store at session start. Always
    /// `0` on per-call (report-level) statistics; engine-level only.
    pub loaded: u64,
    /// Verdicts written by the most recent
    /// [`persist`](DischargeEngine::persist) (explicit or on drop).
    /// Always `0` on per-call statistics; engine-level only.
    pub persisted: u64,
    /// Distinct goals seen: cache entries for engine-level stats, goals
    /// newly added to the cache for report-level stats.
    pub unique_goals: u64,
    /// Worker threads: the effective configured parallelism for
    /// engine-level stats, the thread count actually used for
    /// report-level stats (capped by the number of unsolved goals).
    pub workers: usize,
}

impl EngineStats {
    /// Merges `other` into `self`: counters accumulate, `workers` takes
    /// the maximum. Like
    /// [`SolverStats::absorb`](relaxed_smt::SolverStats::absorb), this is
    /// the one place that knows how to fold engine statistics, so callers
    /// aggregating per-stage or per-program counters cannot silently drop
    /// a field.
    pub fn absorb(&mut self, other: &EngineStats) {
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cross_hits += other.cross_hits;
        self.disk_hits += other.disk_hits;
        self.loaded += other.loaded;
        self.persisted += other.persisted;
        self.unique_goals += other.unique_goals;
        self.workers = self.workers.max(other.workers);
    }
}

/// Per-call overrides for [`DischargeEngine::discharge_with`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DischargeOptions {
    /// Worker-count override for this call (`Some(0)` = one per core);
    /// `None` uses the engine's configured count. The corpus driver uses
    /// this to run each program's discharge sequentially while fanning
    /// programs out across the pool.
    pub workers: Option<usize>,
    /// Owner tag recorded with every verdict this call inserts into the
    /// cache; hits on verdicts inserted under a *different* tag count as
    /// [`EngineStats::cross_hits`]. `0` is the shared untagged owner.
    pub owner: u64,
}

/// The parallel, deduplicating discharge engine.
///
/// One engine holds one verdict cache; share an engine across stages (as
/// [`Verifier::check`](crate::api::Verifier::check) does) to reuse
/// verdicts between them. The engine is [`Sync`]: `&DischargeEngine` can
/// be shared freely.
#[derive(Debug, Default)]
pub struct DischargeEngine {
    config: DischargeConfig,
    cache: Mutex<HashMap<GoalKey, CachedVerdict>>,
    hits: AtomicU64,
    misses: AtomicU64,
    cross: AtomicU64,
    disk: AtomicU64,
    /// Whether the cache holds verdicts not yet written to the on-disk
    /// store (drop-time persistence skips clean caches; explicit
    /// [`persist`](DischargeEngine::persist) always writes).
    dirty: std::sync::atomic::AtomicBool,
    store: Option<DiskStore>,
}

/// The on-disk backing of a persistent engine (see
/// [`DischargeEngine::with_cache_file`]).
#[derive(Debug)]
struct DiskStore {
    path: PathBuf,
    fingerprint: String,
    warnings: Vec<CacheWarning>,
    loaded: u64,
    persisted: AtomicU64,
}

/// A cached verdict plus the owner tag of the discharge call that first
/// solved it (see [`DischargeOptions::owner`]) and whether it was loaded
/// from the on-disk store.
#[derive(Clone, Debug)]
struct CachedVerdict {
    verdict: Validity,
    owner: u64,
    from_disk: bool,
}

// The engine is shared by reference across its own worker threads.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<DischargeEngine>();
};

impl DischargeEngine {
    /// An engine with default configuration and an empty cache.
    pub fn new() -> Self {
        DischargeEngine::default()
    }

    /// An engine with the given configuration and an empty cache.
    pub fn with_config(config: DischargeConfig) -> Self {
        DischargeEngine {
            config,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cross: AtomicU64::new(0),
            disk: AtomicU64::new(0),
            dirty: std::sync::atomic::AtomicBool::new(false),
            store: None,
        }
    }

    /// An engine configured from the environment.
    #[deprecated(
        note = "use `relaxed_core::Verifier::from_env` (a builder-configured session) instead"
    )]
    pub fn from_env() -> Self {
        DischargeEngine::with_config(crate::api::Config::from_env().0.discharge_config())
    }

    /// An engine whose verdict cache is backed by the on-disk store at
    /// `path` (see [`crate::cache`] for the file format and invalidation
    /// rules).
    ///
    /// Entries recorded under this configuration's
    /// [fingerprint](crate::cache::fingerprint) are loaded immediately; a
    /// missing file is a clean cold start, and a corrupt or mismatched
    /// file degrades to a cold start with
    /// [`cache_warnings`](DischargeEngine::cache_warnings). The cache is
    /// written back by [`persist`](DischargeEngine::persist) and,
    /// best-effort, when the engine is dropped.
    pub fn with_cache_file(config: DischargeConfig, path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let fingerprint = cache::fingerprint(&config);
        let loaded = cache::load(&path, &fingerprint);
        let entries: HashMap<GoalKey, CachedVerdict> = loaded
            .entries
            .into_iter()
            .map(|(key, verdict)| {
                (
                    key,
                    CachedVerdict {
                        verdict,
                        // Disk entries carry the shared untagged owner, so
                        // an owner-tagged (corpus) hit on one counts as
                        // cross-owner reuse — which it is: the verdict
                        // came from an earlier session.
                        owner: 0,
                        from_disk: true,
                    },
                )
            })
            .collect();
        let mut engine = DischargeEngine::with_config(config);
        engine.store = Some(DiskStore {
            path,
            fingerprint,
            warnings: loaded.warnings,
            loaded: entries.len() as u64,
            persisted: AtomicU64::new(0),
        });
        engine.cache = Mutex::new(entries);
        engine
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DischargeConfig {
        &self.config
    }

    /// The on-disk cache path, when this engine is persistent.
    pub fn cache_path(&self) -> Option<&std::path::Path> {
        self.store.as_ref().map(|s| s.path.as_path())
    }

    /// Non-fatal problems encountered while loading the on-disk store
    /// (empty for in-memory engines and clean loads).
    pub fn cache_warnings(&self) -> &[CacheWarning] {
        self.store.as_ref().map_or(&[], |s| &s.warnings)
    }

    /// Writes the current verdict cache back to the on-disk store:
    /// header plus one record per entry, compacted, via an atomic
    /// temp-file rename. Returns the number of entries written — `Ok(0)`
    /// for engines without a store.
    ///
    /// Dropping a persistent engine also persists, best-effort, but only
    /// when the cache gained verdicts since the last load/persist (a
    /// fully warm session costs no drop-time I/O; an I/O failure there
    /// is reported to stderr unless `DISCHARGE_QUIET=1`). An explicit
    /// call always writes.
    pub fn persist(&self) -> std::io::Result<u64> {
        let Some(store) = &self.store else {
            return Ok(0);
        };
        // Snapshot under the lock, write without it: the rendering, the
        // file write, and the fsync must not stall concurrent discharge
        // threads waiting on cache lookups. The dirty flag is cleared
        // *inside* the lock, before the snapshot — a verdict inserted
        // concurrently with the file I/O re-dirties the cache and is
        // picked up by the next (or drop-time) persist instead of being
        // silently marked clean.
        let snapshot: Vec<(GoalKey, Validity)> = {
            let cache = self.cache.lock().expect("cache lock");
            self.dirty
                .store(false, std::sync::atomic::Ordering::Relaxed);
            cache
                .iter()
                .map(|(key, slot)| (key.clone(), slot.verdict.clone()))
                .collect()
        };
        let written = cache::persist(
            &store.path,
            &store.fingerprint,
            snapshot.iter().map(|(key, verdict)| (key, verdict)),
        )
        .inspect_err(|_| {
            // The snapshot never reached disk; leave the cache dirty so
            // a later persist retries.
            self.dirty.store(true, std::sync::atomic::Ordering::Relaxed);
        })?;
        store.persisted.store(written, Ordering::Relaxed);
        Ok(written)
    }

    /// Cumulative statistics across every discharge call so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            cross_hits: self.cross.load(Ordering::Relaxed),
            disk_hits: self.disk.load(Ordering::Relaxed),
            loaded: self.store.as_ref().map_or(0, |s| s.loaded),
            persisted: self
                .store
                .as_ref()
                .map_or(0, |s| s.persisted.load(Ordering::Relaxed)),
            unique_goals: self.cache.lock().expect("cache lock").len() as u64,
            workers: self.config.effective_parallelism(),
        }
    }

    /// Discharges `vcs`, reusing cached verdicts and solving the rest in
    /// parallel. Results are reported in generation order with per-VC
    /// solver statistics; the aggregate [`Report::stats`] counts only the
    /// solver work actually performed by this call.
    pub fn discharge(&self, vcs: Vec<Vc>) -> Report {
        self.discharge_with(vcs, DischargeOptions::default())
    }

    /// [`discharge`](DischargeEngine::discharge) with per-call overrides:
    /// a worker-count override and an owner tag for cross-owner hit
    /// accounting (see [`DischargeOptions`]).
    pub fn discharge_with(&self, vcs: Vec<Vc>, opts: DischargeOptions) -> Report {
        // Encode with a fresh context per VC: bound-variable numbering
        // restarts per goal, so the encoded BTerm is a canonical key.
        let goals: Vec<BTerm> = vcs.iter().map(encode_goal).collect();

        // Group structurally identical goals, preserving first-occurrence
        // order.
        let mut uniq: HashMap<&BTerm, usize> = HashMap::new();
        let mut unique_goals: Vec<&BTerm> = Vec::new();
        let mut group_of: Vec<usize> = Vec::with_capacity(goals.len());
        for goal in &goals {
            let next = unique_goals.len();
            let gi = *uniq.entry(goal).or_insert(next);
            if gi == next {
                unique_goals.push(goal);
            }
            group_of.push(gi);
        }

        // Resolve each unique goal from the cross-call cache, or queue it.
        // The rendered key doubles as the on-disk identity, so one
        // rendering per unique goal serves both the in-memory map and the
        // persistent store.
        let keys: Vec<GoalKey> = unique_goals.iter().map(|goal| GoalKey::of(goal)).collect();
        let mut verdicts: Vec<Option<Validity>> = vec![None; unique_goals.len()];
        let mut from_cache: Vec<bool> = vec![false; unique_goals.len()];
        let mut cross_owner: Vec<bool> = vec![false; unique_goals.len()];
        let mut from_disk: Vec<bool> = vec![false; unique_goals.len()];
        let mut work: Vec<usize> = Vec::new();
        {
            let cache = self.cache.lock().expect("cache lock");
            for (gi, key) in keys.iter().enumerate() {
                if let Some(slot) = cache.get(key) {
                    verdicts[gi] = Some(slot.verdict.clone());
                    from_cache[gi] = true;
                    cross_owner[gi] = slot.owner != opts.owner;
                    from_disk[gi] = slot.from_disk;
                } else {
                    work.push(gi);
                }
            }
        }

        // Solve the remaining unique goals on the worker pool. Each goal
        // gets a fresh solver, so per-goal verdicts and statistics are
        // deterministic regardless of scheduling.
        let workers = match opts.workers {
            Some(w) => DischargeConfig {
                workers: w,
                ..self.config.clone()
            }
            .effective_workers(work.len()),
            None => self.config.effective_workers(work.len()),
        };
        let solve = |gi: usize| {
            let mut solver =
                Solver::with_budgets(self.config.max_conflicts, self.config.branch_budget);
            let verdict = solver.check_valid(unique_goals[gi]);
            (gi, verdict, solver.stats())
        };
        let mut solved: Vec<(usize, Validity, SolverStats)> = if workers <= 1 {
            work.iter().map(|&gi| solve(gi)).collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let sink: Mutex<Vec<(usize, Validity, SolverStats)>> =
                Mutex::new(Vec::with_capacity(work.len()));
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&gi) = work.get(k) else { break };
                        let outcome = solve(gi);
                        sink.lock().expect("sink lock").push(outcome);
                    });
                }
            });
            sink.into_inner().expect("sink lock")
        };
        solved.sort_unstable_by_key(|(gi, _, _)| *gi);

        // Publish the new verdicts to the cross-call cache under this
        // call's owner tag.
        {
            let mut cache = self.cache.lock().expect("cache lock");
            for (gi, verdict, _) in &solved {
                cache.insert(
                    keys[*gi].clone(),
                    CachedVerdict {
                        verdict: verdict.clone(),
                        owner: opts.owner,
                        from_disk: false,
                    },
                );
            }
            if !solved.is_empty() {
                self.dirty.store(true, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let mut solved_stats: Vec<Option<SolverStats>> = vec![None; unique_goals.len()];
        for (gi, verdict, stats) in solved {
            verdicts[gi] = Some(verdict);
            solved_stats[gi] = Some(stats);
        }

        // Reassemble in generation order. The solver statistics of each
        // freshly solved goal are attached to its first occurrence; later
        // duplicates and cache hits carry zeroed stats and `cached: true`.
        let total = vcs.len() as u64;
        let mut report = Report::default();
        let mut first_seen: Vec<bool> = vec![false; unique_goals.len()];
        let mut call_cross = 0u64;
        let mut call_disk = 0u64;
        for (vc, gi) in vcs.into_iter().zip(&group_of) {
            let verdict = verdicts[*gi].clone().expect("every goal resolved");
            let fresh = !first_seen[*gi] && !from_cache[*gi];
            first_seen[*gi] = true;
            if !fresh && cross_owner[*gi] {
                call_cross += 1;
            }
            if !fresh && from_disk[*gi] {
                call_disk += 1;
            }
            let stats = if fresh {
                solved_stats[*gi].expect("solved goal has stats")
            } else {
                SolverStats::default()
            };
            if fresh {
                report.stats.absorb(&stats);
            }
            report.results.push(VcResult {
                vc,
                verdict,
                stats,
                cached: !fresh,
            });
        }

        let call_misses = solved_stats.iter().flatten().count() as u64;
        let call_hits = total - call_misses;
        self.hits.fetch_add(call_hits, Ordering::Relaxed);
        self.misses.fetch_add(call_misses, Ordering::Relaxed);
        self.cross.fetch_add(call_cross, Ordering::Relaxed);
        self.disk.fetch_add(call_disk, Ordering::Relaxed);
        report.engine = EngineStats {
            cache_hits: call_hits,
            cache_misses: call_misses,
            cross_hits: call_cross,
            disk_hits: call_disk,
            loaded: 0,
            persisted: 0,
            unique_goals: call_misses,
            workers,
        };
        report
    }
}

impl Drop for DischargeEngine {
    fn drop(&mut self) {
        // Skip the rewrite when nothing changed since the last
        // load/persist: a fully warm session (or one already flushed
        // explicitly) costs no drop-time I/O.
        if !self.dirty.load(std::sync::atomic::Ordering::Relaxed) {
            return;
        }
        if let Some(path) = self.cache_path().map(std::path::Path::to_path_buf) {
            if let Err(e) = self.persist() {
                crate::diag::warn(format_args!(
                    "failed to persist verdict cache {}: {e}",
                    path.display()
                ));
            }
        }
    }
}

/// Encodes one obligation with a fresh bound-name context, yielding its
/// canonical cache key.
fn encode_goal(vc: &Vc) -> BTerm {
    let mut ctx = EncodeCtx::new();
    match &vc.body {
        VcBody::Unary(p) => encode_formula(p, &mut ctx),
        VcBody::Rel(p) => encode_rel_formula(p, &mut ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcgen::Vc;
    use relaxed_lang::parse_formula;

    fn unary_vc(name: &str, source: &str) -> Vc {
        Vc {
            name: name.to_string(),
            context: "test".to_string(),
            body: VcBody::Unary(parse_formula(source).unwrap()),
        }
    }

    #[test]
    fn duplicate_goals_are_solved_once() {
        let engine = DischargeEngine::with_config(DischargeConfig::sequential());
        let vcs = vec![
            unary_vc("a", "x <= x"),
            unary_vc("b", "x <= x"),
            unary_vc("c", "x <= x + 1"),
        ];
        let report = engine.discharge(vcs);
        assert!(report.verified());
        assert_eq!(report.engine.unique_goals, 2);
        assert_eq!(report.engine.cache_misses, 2);
        assert_eq!(report.engine.cache_hits, 1);
        assert!(!report.results[0].cached);
        assert!(report.results[1].cached);
        assert_eq!(report.results[1].stats, SolverStats::default());
    }

    #[test]
    fn cache_persists_across_discharge_calls() {
        let engine = DischargeEngine::with_config(DischargeConfig::sequential());
        let vc = || unary_vc("a", "x + 1 >= x");
        let first = engine.discharge(vec![vc()]);
        assert_eq!(first.engine.cache_hits, 0);
        let second = engine.discharge(vec![vc()]);
        assert_eq!(second.engine.cache_hits, 1);
        assert_eq!(second.engine.cache_misses, 0);
        assert!(second.results[0].cached);
        assert_eq!(second.results[0].verdict, first.results[0].verdict);
        let totals = engine.stats();
        assert_eq!(totals.cache_hits, 1);
        assert_eq!(totals.cache_misses, 1);
        assert_eq!(totals.unique_goals, 1);
    }

    #[test]
    fn parallel_and_sequential_reports_agree() {
        let vcs: Vec<Vc> = (0..12)
            .map(|i| {
                // A mix of valid and invalid goals with some duplicates.
                let f = match i % 3 {
                    0 => format!("x + {i} >= x"),
                    1 => format!("x >= {i}"),
                    _ => "y <= y".to_string(),
                };
                unary_vc(&format!("vc{i}"), &f)
            })
            .collect();
        let seq =
            DischargeEngine::with_config(DischargeConfig::sequential()).discharge(vcs.clone());
        let par = DischargeEngine::with_config(DischargeConfig::with_workers(4)).discharge(vcs);
        assert_eq!(seq.results.len(), par.results.len());
        for (a, b) in seq.results.iter().zip(&par.results) {
            assert_eq!(a.verdict, b.verdict, "verdict mismatch on {}", a.vc);
            assert_eq!(a.cached, b.cached);
            assert_eq!(a.stats, b.stats);
        }
        assert_eq!(seq.stats, par.stats);
        assert_eq!(seq.engine.cache_hits, par.engine.cache_hits);
        assert_eq!(seq.engine.unique_goals, par.engine.unique_goals);
    }

    #[test]
    fn aggregate_stats_equal_per_vc_fold() {
        let vcs = vec![
            unary_vc("a", "x <= x"),
            unary_vc("b", "x >= 5"),
            unary_vc("c", "x <= x"),
        ];
        let report = DischargeEngine::with_config(DischargeConfig::sequential()).discharge(vcs);
        let mut folded = SolverStats::default();
        for r in &report.results {
            folded.absorb(&r.stats);
        }
        assert_eq!(report.stats, folded);
        assert!(report.stats.queries >= 2);
    }

    #[test]
    fn empty_vc_list_discharges_cleanly() {
        let report = DischargeEngine::new().discharge(Vec::new());
        assert!(report.is_empty());
        assert!(report.verified());
        assert_eq!(report.engine.unique_goals, 0);
    }

    #[test]
    fn budget_injection_reaches_the_solver() {
        // This goal is invalid (x=10, y=11, z=0 gives a sum of 21): under
        // starvation budgets the solver may answer Invalid or give up with
        // Unknown, but a budget-starved engine must never claim Valid.
        let config = DischargeConfig {
            workers: 1,
            max_conflicts: 1,
            branch_budget: 1,
        };
        let engine = DischargeEngine::with_config(config);
        assert_eq!(engine.config().max_conflicts, 1);
        let vcs = vec![unary_vc(
            "hard",
            "(x <= 0 || x >= 10) && (y <= 0 || y >= 10) && (z <= 0 || z >= 10)
             ==> x + y + z >= 30 || x + y + z <= 20",
        )];
        let report = engine.discharge(vcs);
        assert!(!report.results[0].verdict.is_valid());
    }
}
