//! The parallel, deduplicating VC discharge engine.
//!
//! The paper's staged methodology (`⊢o`, then `⊢i`, then `⊢r`) generates
//! many verification conditions per program, and the obligations are
//! mutually independent: each is a closed validity query. The engine
//! exploits that independence twice over:
//!
//! 1. **Structural deduplication.** Every obligation is encoded with a
//!    fresh [`EncodeCtx`], so the per-goal bound-variable numbering
//!    restarts at zero and two occurrences of the same obligation encode
//!    to structurally identical [`BTerm`]s. (Bound names keep their
//!    source identifier — `x!b0` — so goals that differ only by binder
//!    *names* are not identified; the duplicates the VC generator emits
//!    are verbatim re-proofs, which this canonical form catches.) The
//!    encoded goal is the key of a verdict cache shared
//!    across every discharge call made through one engine — in particular
//!    across the `⊢o` and `⊢r` stages of
//!    [`Verifier::check`](crate::api::Verifier::check), whose diverge
//!    sub-proofs re-prove many of the `⊢o` stage's unary goals verbatim,
//!    and across the programs of a
//!    [`Verifier::check_corpus`](crate::api::Verifier::check_corpus)
//!    batch.
//! 2. **Static pre-discharge analysis.** Before any solver is built,
//!    the goal-level static analysis layer ([`crate::prefilter`],
//!    [`DischargeConfig::prefilter`]) proves trivially-valid goals by
//!    interval/constant evaluation over the interned term DAG — zero
//!    SAT/simplex work, counted in [`EngineStats::static_hits`] — and
//!    normalizes hypothesis conjunctions (split, slice to the
//!    conclusion's free-variable cone, sort) so the grouping below keys
//!    on relevant cores instead of verbatim hypotheses.
//! 3. **Incremental, parallel discharge.** The unique, uncached goals
//!    are partitioned into work units and solved on a
//!    [`std::thread::scope`] worker pool. Goals of the shape `h ⇒ c`
//!    whose hypothesis and conclusion both lie in the pure linear
//!    fragment are grouped by shared (normalized) hypothesis and
//!    discharged through one [`Solver::session`] per group: the
//!    hypothesis is asserted once, then each conclusion is refuted in
//!    its own `push`/`pop` scope, keeping the clause database and the
//!    simplex tableau warm across the group
//!    ([`DischargeConfig::incremental`]; verdict-equivalent to a fresh
//!    solver per goal — a group member whose hypothesis was weakened by
//!    slicing accepts only `Valid` from the session and re-proves the
//!    full goal otherwise). Everything else gets a fresh [`Solver`].
//!    Groups — not goals — are the unit of scheduling, and results are
//!    reassembled in generation order, so a [`Report`] is byte-for-byte
//!    identical regardless of worker count.
//!
//! Worker count, solver budgets, the incremental toggle and the static
//! analysis toggle come from [`DischargeConfig`]. The engine itself
//! never reads the process environment; the `DISCHARGE_WORKERS`,
//! `DISCHARGE_CONFLICTS`, `DISCHARGE_BRANCH_BUDGET`,
//! `DISCHARGE_INCREMENTAL` and `DISCHARGE_PREFILTER` variables are
//! applied only through the explicit opt-in layer
//! [`Config::from_env`](crate::api::Config::from_env).

use crate::cache::{self, CacheWarning, GoalKey};
use crate::encode::{encode_formula, encode_rel_formula, EncodeCtx};
use crate::prefilter::{linear_bool, normalize, Prefilter};
use crate::vcgen::{Vc, VcBody};
use crate::verify::{Report, VcResult};
use relaxed_smt::ast::BTerm;
use relaxed_smt::{Solver, SolverStats, Validity};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Tuning knobs for a [`DischargeEngine`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DischargeConfig {
    /// Worker threads for parallel discharge; `0` means one per
    /// available core.
    pub workers: usize,
    /// CDCL conflict budget per goal (see [`Solver::max_conflicts`]).
    pub max_conflicts: u64,
    /// Branch-and-bound node budget per theory check (see
    /// [`Solver::branch_budget`]).
    pub branch_budget: u64,
    /// Whether pure-linear goals sharing a hypothesis are discharged
    /// incrementally through one [`Solver::session`] per group instead
    /// of one fresh solver per goal (the default). Verdicts are
    /// identical either way — only solver reuse changes — so this knob
    /// is deliberately **excluded** from the on-disk cache
    /// [fingerprint](crate::cache::fingerprint), like `workers`.
    pub incremental: bool,
    /// Whether the goal-level static analysis layer
    /// ([`crate::prefilter`]) runs in front of the solver (the default):
    /// the abstract-interpretation prefilter discharges trivially-valid
    /// goals with zero solver work (counted in
    /// [`EngineStats::static_hits`]), and incremental grouping keys on
    /// *normalized* (split, sliced, sorted) hypotheses instead of
    /// verbatim ones. Verdicts are identical either way, so this knob is
    /// also **excluded** from the cache fingerprint, like `workers` and
    /// `incremental`.
    pub prefilter: bool,
    /// How long the shard coordinator (and the service client/daemon)
    /// waits for a freshly spawned or connected worker to answer the
    /// config handshake with a `ready` frame. Purely a transport-layer
    /// patience knob — verdicts never depend on it — so it is
    /// **excluded** from the cache fingerprint, like `workers`.
    pub ready_timeout: std::time::Duration,
    /// How long the shard coordinator (and the service client/daemon)
    /// waits for a worker to answer one job frame before declaring it
    /// unresponsive and retrying on a fresh worker. Settable via the
    /// `DISCHARGE_SHARD_TIMEOUT` env knob (seconds); excluded from the
    /// cache fingerprint for the same reason as `ready_timeout`.
    pub job_timeout: std::time::Duration,
}

/// Default [`DischargeConfig::ready_timeout`]: how long to wait for a
/// worker's `ready` handshake frame.
pub const DEFAULT_READY_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(60);

/// Default [`DischargeConfig::job_timeout`]: how long to wait for a
/// worker to answer one job frame.
pub const DEFAULT_JOB_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(600);

impl Default for DischargeConfig {
    fn default() -> Self {
        let defaults = Solver::default();
        DischargeConfig {
            workers: 0,
            max_conflicts: defaults.max_conflicts(),
            branch_budget: defaults.branch_budget(),
            incremental: true,
            prefilter: true,
            ready_timeout: DEFAULT_READY_TIMEOUT,
            job_timeout: DEFAULT_JOB_TIMEOUT,
        }
    }
}

impl DischargeConfig {
    /// The default configuration with environment overrides applied.
    ///
    /// Parse failures are silently dropped here; prefer
    /// [`Config::from_env`](crate::api::Config::from_env), which reports
    /// them.
    #[deprecated(note = "use `relaxed_core::Config::from_env` (the typed session config) instead")]
    pub fn from_env() -> Self {
        crate::api::Config::from_env().0.discharge_config()
    }

    /// A single-worker (fully sequential) configuration.
    pub fn sequential() -> Self {
        DischargeConfig {
            workers: 1,
            ..DischargeConfig::default()
        }
    }

    /// The default configuration pinned to `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        DischargeConfig {
            workers,
            ..DischargeConfig::default()
        }
    }

    /// The configured worker count with `0` (auto) resolved to the number
    /// of available cores.
    pub fn effective_parallelism(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        }
    }

    /// The thread count a discharge of `goals` unsolved goals will use.
    fn effective_workers(&self, goals: usize) -> usize {
        self.effective_parallelism().min(goals).max(1)
    }
}

/// Cache and throughput counters for a [`DischargeEngine`] (or, on a
/// [`Report`], for one discharge call).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Obligations answered from the verdict cache (including duplicates
    /// deduplicated within a single discharge call).
    pub cache_hits: u64,
    /// Obligations that required a solver run.
    pub cache_misses: u64,
    /// Cache hits whose verdict was first inserted under a different
    /// [`DischargeOptions::owner`] tag. The corpus driver
    /// ([`Verifier::check_corpus`](crate::api::Verifier::check_corpus))
    /// tags each program with its own owner, so this counts verdicts
    /// reused *across programs*; untagged discharge calls all share owner
    /// `0` and report `0` here.
    pub cross_hits: u64,
    /// Cache hits answered by a verdict loaded from the on-disk store
    /// (a subset of `cache_hits`) — the across-run payoff of
    /// [`CachePolicy::Persistent`](crate::api::CachePolicy::Persistent).
    pub disk_hits: u64,
    /// Verdicts loaded from the on-disk store at session start. Always
    /// `0` on per-call (report-level) statistics; engine-level only.
    pub loaded: u64,
    /// Verdicts written by the most recent
    /// [`persist`](DischargeEngine::persist) (explicit or on drop).
    /// Always `0` on per-call statistics; engine-level only.
    pub persisted: u64,
    /// Least-recently-hit verdicts dropped by cache compaction when the
    /// store exceeded its entry cap (see
    /// [`DischargeEngine::set_cache_max`]); cumulative across persists.
    /// Always `0` on per-call statistics; engine-level only.
    pub evicted: u64,
    /// Goals proved by the static prefilter alone — no SAT or simplex
    /// work at all (a subset of `cache_misses`: a static hit still
    /// counts as "solved this call" and publishes to the cache like any
    /// fresh verdict). Zero unless [`DischargeConfig::prefilter`] is on.
    pub static_hits: u64,
    /// Distinct goals seen: cache entries for engine-level stats, goals
    /// newly added to the cache for report-level stats.
    pub unique_goals: u64,
    /// Worker threads: the effective configured parallelism for
    /// engine-level stats, the thread count actually used for
    /// report-level stats (capped by the number of unsolved goals).
    pub workers: usize,
    /// Wall milliseconds spent generating obligations (vcgen), folded
    /// in by the staged pipeline — the engine itself never runs vcgen.
    pub elapsed_vcgen_ms: u64,
    /// Wall milliseconds spent lowering goals to solver terms.
    pub elapsed_encode_ms: u64,
    /// Wall milliseconds spent in solver sessions (including prefilter
    /// work that avoided them), summed across worker threads.
    pub elapsed_solve_ms: u64,
    /// Wall milliseconds spent probing, loading, refreshing, and
    /// persisting the verdict cache.
    pub elapsed_cache_ms: u64,
}

impl EngineStats {
    /// Merges `other` into `self`: counters accumulate, `workers` takes
    /// the maximum. Like
    /// [`SolverStats::absorb`](relaxed_smt::SolverStats::absorb), this is
    /// the one place that knows how to fold engine statistics, so callers
    /// aggregating per-stage or per-program counters cannot silently drop
    /// a field.
    pub fn absorb(&mut self, other: &EngineStats) {
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cross_hits += other.cross_hits;
        self.disk_hits += other.disk_hits;
        self.static_hits += other.static_hits;
        self.loaded += other.loaded;
        self.persisted += other.persisted;
        self.evicted += other.evicted;
        self.unique_goals += other.unique_goals;
        self.workers = self.workers.max(other.workers);
        self.elapsed_vcgen_ms += other.elapsed_vcgen_ms;
        self.elapsed_encode_ms += other.elapsed_encode_ms;
        self.elapsed_solve_ms += other.elapsed_solve_ms;
        self.elapsed_cache_ms += other.elapsed_cache_ms;
    }
}

/// Per-call overrides for [`DischargeEngine::discharge_with`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DischargeOptions {
    /// Worker-count override for this call (`Some(0)` = one per core);
    /// `None` uses the engine's configured count. The corpus driver uses
    /// this to run each program's discharge sequentially while fanning
    /// programs out across the pool.
    pub workers: Option<usize>,
    /// Owner tag recorded with every verdict this call inserts into the
    /// cache; hits on verdicts inserted under a *different* tag count as
    /// [`EngineStats::cross_hits`]. `0` is the shared untagged owner.
    pub owner: u64,
}

/// The parallel, deduplicating discharge engine.
///
/// One engine holds one verdict cache; share an engine across stages (as
/// [`Verifier::check`](crate::api::Verifier::check) does) to reuse
/// verdicts between them. The engine is [`Sync`]: `&DischargeEngine` can
/// be shared freely.
#[derive(Debug, Default)]
pub struct DischargeEngine {
    config: DischargeConfig,
    cache: Mutex<HashMap<GoalKey, CachedVerdict>>,
    hits: AtomicU64,
    misses: AtomicU64,
    cross: AtomicU64,
    disk: AtomicU64,
    statics: AtomicU64,
    /// Entry cap for the persistent store (`0` = unbounded):
    /// [`persist`](DischargeEngine::persist) compacts past the cap by
    /// dropping the least-recently-hit verdicts.
    cache_max: usize,
    /// Cumulative count of entries dropped by cache compaction.
    evicted: AtomicU64,
    /// Logical recency clock: bumped once per discharge call (and cache
    /// refresh); cache slots record the tick of their last hit, which
    /// orders compaction.
    tick: AtomicU64,
    /// Whether the cache holds verdicts not yet written to the on-disk
    /// store (drop-time persistence skips clean caches; explicit
    /// [`persist`](DischargeEngine::persist) always writes).
    dirty: std::sync::atomic::AtomicBool,
    /// Keys of verdicts solved since the last flush, in insertion order —
    /// the batch [`append_pending`](DischargeEngine::append_pending)
    /// appends to the store. Only populated for persistent engines.
    pending: Mutex<Vec<GoalKey>>,
    store: Option<DiskStore>,
    /// Cumulative phase clocks, in µs (reported in ms via
    /// [`EngineStats`]): vcgen (folded in by the staged pipeline),
    /// goal encoding, solver sessions, and cache I/O.
    vcgen_us: AtomicU64,
    encode_us: AtomicU64,
    solve_us: AtomicU64,
    cache_us: AtomicU64,
}

/// The on-disk backing of a persistent engine (see
/// [`DischargeEngine::with_cache_file`]).
#[derive(Debug)]
struct DiskStore {
    path: PathBuf,
    fingerprint: String,
    warnings: Vec<CacheWarning>,
    loaded: AtomicU64,
    persisted: AtomicU64,
    /// The file state this engine has fully merged, recorded from a
    /// `stat` taken **before** the corresponding read — so records a
    /// sibling appends while we read land beyond the recorded length and
    /// are picked up by the next refresh, never silently skipped.
    /// [`DischargeEngine::refresh_from_disk`] uses it to skip unchanged
    /// files (one `stat`) and to parse only the appended tail of grown
    /// ones.
    last_seen: Mutex<Option<FileStamp>>,
    /// Whether the last full load of the current file generation found a
    /// header matching this session's fingerprint — the precondition for
    /// trusting an appended tail without re-checking the header.
    tail_ok: std::sync::atomic::AtomicBool,
}

/// One generation-and-length observation of the store file: `id` is the
/// inode on Unix (`None` where unavailable), so an atomic-rename rewrite
/// — which swaps the inode — is distinguished from append-only growth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct FileStamp {
    id: Option<u64>,
    len: u64,
}

impl FileStamp {
    fn of(path: &std::path::Path) -> Option<FileStamp> {
        let meta = std::fs::metadata(path).ok()?;
        #[cfg(unix)]
        let id = {
            use std::os::unix::fs::MetadataExt;
            Some(meta.ino())
        };
        #[cfg(not(unix))]
        let id = None;
        Some(FileStamp {
            id,
            len: meta.len(),
        })
    }

    /// Whether a store observed at `now` can be caught up from `self` by
    /// parsing only the bytes past `self.len`: same (known) file
    /// generation, strictly grown. Anything else — rewrite, shrink,
    /// unknown identity — requires a full fingerprint-checked reload.
    fn tail_of(self, now: FileStamp) -> bool {
        self.id.is_some() && self.id == now.id && now.len > self.len && self.len > 0
    }
}

/// A cached verdict plus the owner tag of the discharge call that first
/// solved it (see [`DischargeOptions::owner`]), whether it was loaded
/// from the on-disk store, and the recency tick of its last hit (for
/// compaction).
#[derive(Clone, Debug)]
struct CachedVerdict {
    verdict: Validity,
    owner: u64,
    from_disk: bool,
    last_hit: u64,
}

// The engine is shared by reference across its own worker threads.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<DischargeEngine>();
};

/// Whole microseconds since `started`, saturated into `u64`.
fn elapsed_us(started: std::time::Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// RAII phase clock: adds the guarded scope's wall time (µs) to a
/// cumulative counter on drop, so early returns are counted too.
struct PhaseTimer<'a> {
    clock: &'a AtomicU64,
    started: std::time::Instant,
}

fn phase(clock: &AtomicU64) -> PhaseTimer<'_> {
    PhaseTimer {
        clock,
        started: std::time::Instant::now(),
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        self.clock
            .fetch_add(elapsed_us(self.started), Ordering::Relaxed);
    }
}

impl DischargeEngine {
    /// An engine with default configuration and an empty cache.
    pub fn new() -> Self {
        DischargeEngine::default()
    }

    /// An engine with the given configuration and an empty cache.
    pub fn with_config(config: DischargeConfig) -> Self {
        DischargeEngine {
            config,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cross: AtomicU64::new(0),
            disk: AtomicU64::new(0),
            statics: AtomicU64::new(0),
            cache_max: 0,
            evicted: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            dirty: std::sync::atomic::AtomicBool::new(false),
            pending: Mutex::new(Vec::new()),
            store: None,
            vcgen_us: AtomicU64::new(0),
            encode_us: AtomicU64::new(0),
            solve_us: AtomicU64::new(0),
            cache_us: AtomicU64::new(0),
        }
    }

    /// An engine configured from the environment.
    #[deprecated(
        note = "use `relaxed_core::Verifier::from_env` (a builder-configured session) instead"
    )]
    pub fn from_env() -> Self {
        DischargeEngine::with_config(crate::api::Config::from_env().0.discharge_config())
    }

    /// An engine whose verdict cache is backed by the on-disk store at
    /// `path` (see [`crate::cache`] for the file format and invalidation
    /// rules).
    ///
    /// Entries recorded under this configuration's
    /// [fingerprint](crate::cache::fingerprint) are loaded immediately; a
    /// missing file is a clean cold start, and a corrupt or mismatched
    /// file degrades to a cold start with
    /// [`cache_warnings`](DischargeEngine::cache_warnings). The cache is
    /// written back by [`persist`](DischargeEngine::persist) and,
    /// best-effort, when the engine is dropped.
    pub fn with_cache_file(config: DischargeConfig, path: impl Into<PathBuf>) -> Self {
        let started = std::time::Instant::now();
        let mut load_span = crate::telemetry::span("cache", "cache_load");
        let path = path.into();
        let fingerprint = cache::fingerprint(&config);
        // Stat before reading: records appended concurrently with the
        // load land past this stamp and are merged by the next refresh.
        let stamp = FileStamp::of(&path);
        let loaded = cache::load(&path, &fingerprint);
        let entries: HashMap<GoalKey, CachedVerdict> = loaded
            .entries
            .into_iter()
            .map(|(key, verdict)| {
                (
                    key,
                    CachedVerdict {
                        verdict,
                        // Disk entries carry the shared untagged owner, so
                        // an owner-tagged (corpus) hit on one counts as
                        // cross-owner reuse — which it is: the verdict
                        // came from an earlier session.
                        owner: 0,
                        from_disk: true,
                        // Loaded-but-never-hit entries are the oldest tier
                        // of this session's recency order, so compaction
                        // sheds them first.
                        last_hit: 0,
                    },
                )
            })
            .collect();
        let mut engine = DischargeEngine::with_config(config);
        engine.store = Some(DiskStore {
            path,
            fingerprint,
            warnings: loaded.warnings,
            loaded: AtomicU64::new(entries.len() as u64),
            persisted: AtomicU64::new(0),
            last_seen: Mutex::new(stamp),
            tail_ok: std::sync::atomic::AtomicBool::new(loaded.compatible),
        });
        load_span.arg(
            "loaded",
            engine
                .store
                .as_ref()
                .map_or(0u64, |s| s.loaded.load(Ordering::Relaxed)),
        );
        engine.cache = Mutex::new(entries);
        engine.tick = AtomicU64::new(1);
        engine.cache_us = AtomicU64::new(elapsed_us(started));
        engine
    }

    /// Caps the persistent store at `cache_max` entries (`0` = unbounded,
    /// the default). When the verdict cache exceeds the cap,
    /// [`persist`](DischargeEngine::persist) compacts it by dropping the
    /// least-recently-hit entries (in memory and on disk) and counts them
    /// in [`EngineStats::evicted`]. Configured through
    /// `Verifier::builder().cache_max(..)` or `DISCHARGE_CACHE_MAX`.
    pub fn set_cache_max(&mut self, cache_max: usize) {
        self.cache_max = cache_max;
    }

    /// Merges verdicts other processes have persisted to this engine's
    /// on-disk store since it was loaded: entries in the file (under the
    /// session fingerprint) that the in-memory cache does not yet hold
    /// are inserted as disk-backed verdicts. Returns the number of newly
    /// merged entries; `0` for in-memory engines.
    ///
    /// This is the read half of the sharded corpus driver's
    /// cross-process transport ([`crate::shard`]): workers refresh before
    /// each job, picking up their siblings' verdicts as
    /// [`EngineStats::disk_hits`] (the write half is the append-only
    /// [`append_pending`](DischargeEngine::append_pending)). Refreshes
    /// are incremental: the file is `stat`ed first; an unchanged file
    /// costs nothing more, a grown file of the same generation (same
    /// inode, header already validated) has only its appended tail
    /// parsed, and anything else — a compacting rewrite swaps the inode —
    /// triggers a full fingerprint-checked reload. Stamps are taken
    /// *before* reading, so records appended concurrently with a reload
    /// are merged by the next refresh, never silently skipped. File
    /// warnings are ignored here — a torn concurrent append simply
    /// yields fewer mergeable entries; the next refresh catches up.
    pub fn refresh_from_disk(&self) -> u64 {
        let Some(store) = &self.store else {
            return 0;
        };
        let _clock = phase(&self.cache_us);
        let _span = crate::telemetry::span("cache", "cache_refresh");
        let now = FileStamp::of(&store.path);
        let seen = *store.last_seen.lock().expect("store stamp lock");
        let loaded = match (now, seen) {
            (None, None) => return 0, // still no file
            (Some(now), Some(seen)) if now == seen => return 0,
            (Some(now), Some(seen))
                if seen.tail_of(now)
                    && store.tail_ok.load(std::sync::atomic::Ordering::Relaxed) =>
            {
                cache::load_tail(&store.path, seen.len)
            }
            _ => {
                let loaded = cache::load(&store.path, &store.fingerprint);
                store
                    .tail_ok
                    .store(loaded.compatible, std::sync::atomic::Ordering::Relaxed);
                loaded
            }
        };
        *store.last_seen.lock().expect("store stamp lock") = now;
        if loaded.entries.is_empty() {
            return 0;
        }
        let mut merged = 0u64;
        let mut cache = self.cache.lock().expect("cache lock");
        for (key, verdict) in loaded.entries {
            cache.entry(key).or_insert_with(|| {
                merged += 1;
                CachedVerdict {
                    verdict,
                    owner: 0,
                    from_disk: true,
                    // Merged-but-never-hit entries join the oldest
                    // eviction tier, exactly like build-time loads: a
                    // capped persist must shed them before anything this
                    // session actually used.
                    last_hit: 0,
                }
            });
        }
        drop(cache);
        store.loaded.fetch_add(merged, Ordering::Relaxed);
        merged
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DischargeConfig {
        &self.config
    }

    /// The on-disk cache path, when this engine is persistent.
    pub fn cache_path(&self) -> Option<&std::path::Path> {
        self.store.as_ref().map(|s| s.path.as_path())
    }

    /// Non-fatal problems encountered while loading the on-disk store
    /// (empty for in-memory engines and clean loads).
    pub fn cache_warnings(&self) -> &[CacheWarning] {
        self.store.as_ref().map_or(&[], |s| &s.warnings)
    }

    /// Writes the current verdict cache back to the on-disk store:
    /// header plus one record per entry, compacted, via an atomic
    /// temp-file rename. Entries are written oldest-hit first; when a
    /// [`set_cache_max`](DischargeEngine::set_cache_max) cap is set and
    /// exceeded, the least-recently-hit surplus is dropped (from the
    /// store *and* the in-memory cache) and counted in
    /// [`EngineStats::evicted`]. Returns the number of entries written —
    /// `Ok(0)` for engines without a store.
    ///
    /// Dropping a persistent engine also persists, best-effort, but only
    /// when the cache gained verdicts since the last load/persist (a
    /// fully warm session costs no drop-time I/O; an I/O failure there
    /// is reported to stderr unless `DISCHARGE_QUIET=1`). An explicit
    /// call always writes.
    pub fn persist(&self) -> std::io::Result<u64> {
        let Some(store) = &self.store else {
            return Ok(0);
        };
        let _clock = phase(&self.cache_us);
        let _span = crate::telemetry::span("cache", "cache_persist");
        // Snapshot (and compact) under the lock, write without it: the
        // rendering, the file write, and the fsync must not stall
        // concurrent discharge threads waiting on cache lookups. The
        // dirty flag is cleared *inside* the lock, before the snapshot —
        // a verdict inserted concurrently with the file I/O re-dirties
        // the cache and is picked up by the next (or drop-time) persist
        // instead of being silently marked clean.
        let snapshot: Vec<(GoalKey, Validity)> = {
            let mut cache = self.cache.lock().expect("cache lock");
            self.dirty
                .store(false, std::sync::atomic::Ordering::Relaxed);
            let mut entries: Vec<(GoalKey, u64)> = cache
                .iter()
                .map(|(key, slot)| (key.clone(), slot.last_hit))
                .collect();
            // Oldest hit first (key-ordered within a tick, so the file is
            // deterministic for a given hit history).
            entries.sort_unstable_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));
            if self.cache_max > 0 && entries.len() > self.cache_max {
                let surplus = entries.len() - self.cache_max;
                for (key, _) in entries.drain(..surplus) {
                    cache.remove(&key);
                }
                self.evicted.fetch_add(surplus as u64, Ordering::Relaxed);
            }
            entries
                .into_iter()
                .map(|(key, _)| {
                    let verdict = cache.get(&key).expect("surviving entry").verdict.clone();
                    (key, verdict)
                })
                .collect()
        };
        // The rewrite covers every pending verdict, so the append batch
        // is settled too (cleared before the write under the same
        // reasoning as the dirty flag: a failure re-instates retry via
        // `dirty`, and duplicated appends are harmless later-wins
        // records).
        self.pending.lock().expect("pending lock").clear();
        let written = cache::persist(
            &store.path,
            &store.fingerprint,
            snapshot.iter().map(|(key, verdict)| (key, verdict)),
        )
        .inspect_err(|_| {
            // The snapshot never reached disk; leave the cache dirty so
            // a later persist retries.
            self.dirty.store(true, std::sync::atomic::Ordering::Relaxed);
        })?;
        // The rewrite replaced the file generation; a sibling may already
        // have appended to either generation. Clearing the stamp makes
        // the next refresh a full (cheap-to-reason-about) reload.
        *store.last_seen.lock().expect("store stamp lock") = None;
        store.persisted.store(written, Ordering::Relaxed);
        Ok(written)
    }

    /// Appends the verdicts solved since the last flush to the on-disk
    /// store, without rewriting it — the write half of the sharded corpus
    /// driver's cross-process transport. Unlike
    /// [`persist`](DischargeEngine::persist) (a whole-file rewrite whose
    /// concurrent last-writer-wins race can drop entries a sibling
    /// process just published), an append can never lose another
    /// writer's records: duplicate keys are resolved later-wins at load
    /// time. Returns the number of entries appended — `Ok(0)` for
    /// engines without a store or with nothing new.
    ///
    /// Compaction ([`set_cache_max`](DischargeEngine::set_cache_max))
    /// remains a [`persist`](DischargeEngine::persist) concern: appenders
    /// only grow the file, and a later compacting session bounds it.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error; the batch is retained
    /// for the next flush attempt.
    pub fn append_pending(&self) -> std::io::Result<u64> {
        let Some(store) = &self.store else {
            return Ok(0);
        };
        let _clock = phase(&self.cache_us);
        let _span = crate::telemetry::span("cache", "cache_append");
        let batch: Vec<GoalKey> = std::mem::take(&mut *self.pending.lock().expect("pending lock"));
        if batch.is_empty() {
            return Ok(0);
        }
        let entries: Vec<(GoalKey, Validity)> = {
            let cache = self.cache.lock().expect("cache lock");
            batch
                .iter()
                .filter_map(|key| {
                    cache
                        .get(key)
                        .map(|slot| (key.clone(), slot.verdict.clone()))
                })
                .collect()
        };
        let appended = cache::append(
            &store.path,
            &store.fingerprint,
            entries.iter().map(|(key, verdict)| (key, verdict)),
        )
        .inspect_err(|_| {
            // Nothing reached disk; put the batch back for a retry (the
            // dirty flag already guarantees a drop-time rewrite as the
            // last resort).
            let mut pending = self.pending.lock().expect("pending lock");
            let mut retained = batch.clone();
            retained.extend(pending.drain(..));
            *pending = retained;
        })?;
        // Deliberately no stamp update: the next refresh tail-parses from
        // the last *read* position — re-scanning our own appended records
        // is cheap (merge no-ops), whereas stamping here could mask a
        // sibling's append that landed between our write and the stat.
        // Everything the cache gained since the last flush is now on
        // disk; a clean engine skips the drop-time rewrite.
        if self.pending.lock().expect("pending lock").is_empty() {
            self.dirty
                .store(false, std::sync::atomic::Ordering::Relaxed);
        }
        Ok(appended)
    }

    /// Cumulative statistics across every discharge call so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            cross_hits: self.cross.load(Ordering::Relaxed),
            disk_hits: self.disk.load(Ordering::Relaxed),
            static_hits: self.statics.load(Ordering::Relaxed),
            loaded: self
                .store
                .as_ref()
                .map_or(0, |s| s.loaded.load(Ordering::Relaxed)),
            persisted: self
                .store
                .as_ref()
                .map_or(0, |s| s.persisted.load(Ordering::Relaxed)),
            evicted: self.evicted.load(Ordering::Relaxed),
            unique_goals: self.cache.lock().expect("cache lock").len() as u64,
            workers: self.config.effective_parallelism(),
            elapsed_vcgen_ms: self.vcgen_us.load(Ordering::Relaxed) / 1000,
            elapsed_encode_ms: self.encode_us.load(Ordering::Relaxed) / 1000,
            elapsed_solve_ms: self.solve_us.load(Ordering::Relaxed) / 1000,
            elapsed_cache_ms: self.cache_us.load(Ordering::Relaxed) / 1000,
        }
    }

    /// Folds vcgen wall time into the engine's phase clocks — called by
    /// the staged pipeline ([`crate::verify`]), which runs vcgen before
    /// handing the obligations to the engine.
    pub(crate) fn note_vcgen_us(&self, us: u64) {
        self.vcgen_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Replays a set of goals from the verdict cache without encoding or
    /// solving anything: all-or-none under one cache lock. Returns the
    /// verdicts in `keys` order iff *every* key is resident; a single
    /// miss returns `None` and leaves the counters untouched, so callers
    /// fall back to a full [`discharge`](DischargeEngine::discharge).
    ///
    /// This is the incremental re-verification fast path (see
    /// [`crate::depmap`]): a program none of whose goal keys changed is
    /// re-verified by replaying its stored keys. Each replayed goal
    /// counts as a cache hit (and a disk hit when the resident verdict
    /// was loaded from the store), keeping the stats truthful about
    /// where the verdicts came from.
    pub(crate) fn replay(&self, keys: &[GoalKey]) -> Option<(Vec<Validity>, u64)> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut cache = self.cache.lock().expect("cache lock");
        // Probe before mutating: a miss anywhere must not bump recency
        // or counters for the keys probed so far.
        if !keys.iter().all(|key| cache.contains_key(key)) {
            return None;
        }
        let mut verdicts = Vec::with_capacity(keys.len());
        let mut disk = 0u64;
        for key in keys {
            let slot = cache.get_mut(key).expect("probed above");
            slot.last_hit = now;
            if slot.from_disk {
                disk += 1;
            }
            verdicts.push(slot.verdict.clone());
        }
        self.hits.fetch_add(keys.len() as u64, Ordering::Relaxed);
        self.disk.fetch_add(disk, Ordering::Relaxed);
        Some((verdicts, disk))
    }

    /// Discharges `vcs`, reusing cached verdicts and solving the rest in
    /// parallel. Results are reported in generation order with per-VC
    /// solver statistics; the aggregate [`Report::stats`] counts only the
    /// solver work actually performed by this call.
    pub fn discharge(&self, vcs: Vec<Vc>) -> Report {
        self.discharge_with(vcs, DischargeOptions::default())
    }

    /// [`discharge`](DischargeEngine::discharge) with per-call overrides:
    /// a worker-count override and an owner tag for cross-owner hit
    /// accounting (see [`DischargeOptions`]).
    pub fn discharge_with(&self, vcs: Vec<Vc>, opts: DischargeOptions) -> Report {
        let mut call_span = crate::telemetry::span("engine", "discharge");
        call_span.arg("vcs", vcs.len());
        let encode_started = std::time::Instant::now();
        let mut encode_span = crate::telemetry::span("engine", "encode");
        // Encode with a fresh context per VC: bound-variable numbering
        // restarts per goal, so the encoded BTerm is a canonical key.
        let goals: Vec<BTerm> = vcs.iter().map(encode_goal).collect();

        // Group structurally identical goals, preserving first-occurrence
        // order.
        let mut uniq: HashMap<&BTerm, usize> = HashMap::new();
        let mut unique_goals: Vec<&BTerm> = Vec::new();
        let mut group_of: Vec<usize> = Vec::with_capacity(goals.len());
        for goal in &goals {
            let next = unique_goals.len();
            let gi = *uniq.entry(goal).or_insert(next);
            if gi == next {
                unique_goals.push(goal);
            }
            group_of.push(gi);
        }

        // Resolve each unique goal from the cross-call cache, or queue it.
        // The rendered key doubles as the on-disk identity, so one
        // rendering per unique goal serves both the in-memory map and the
        // persistent store.
        let keys: Vec<GoalKey> = unique_goals.iter().map(|goal| GoalKey::of(goal)).collect();
        encode_span.arg("unique_goals", unique_goals.len());
        drop(encode_span);
        let call_encode_us = elapsed_us(encode_started);
        self.encode_us.fetch_add(call_encode_us, Ordering::Relaxed);

        let cache_started = std::time::Instant::now();
        let mut probe_span = crate::telemetry::span("engine", "cache_probe");
        let mut verdicts: Vec<Option<Validity>> = vec![None; unique_goals.len()];
        let mut from_cache: Vec<bool> = vec![false; unique_goals.len()];
        let mut cross_owner: Vec<bool> = vec![false; unique_goals.len()];
        let mut from_disk: Vec<bool> = vec![false; unique_goals.len()];
        let mut work: Vec<usize> = Vec::new();
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut cache = self.cache.lock().expect("cache lock");
            for (gi, key) in keys.iter().enumerate() {
                if let Some(slot) = cache.get_mut(key) {
                    slot.last_hit = now;
                    verdicts[gi] = Some(slot.verdict.clone());
                    from_cache[gi] = true;
                    cross_owner[gi] = slot.owner != opts.owner;
                    from_disk[gi] = slot.from_disk;
                } else {
                    work.push(gi);
                }
            }
        }
        probe_span.arg("hits", unique_goals.len() - work.len());
        probe_span.arg("misses", work.len());
        drop(probe_span);
        let mut call_cache_us = elapsed_us(cache_started);

        let solve_started = std::time::Instant::now();
        // Static prefilter: before any solver is built, an interval /
        // constant-propagation evaluation over the interned goal DAG
        // discharges trivially-valid goals — tautologies, conclusions
        // that are conjuncts of their hypothesis, bound-implied
        // comparisons, contradictory hypotheses — with zero SAT/simplex
        // work. A statically proved goal enters `solved` with zeroed
        // solver statistics and flows through verdict publication and
        // reassembly exactly like a solver-proved one (so it counts as a
        // cache miss with a `static_hits` marker, and its verdict lands
        // in the cache under the same key).
        let mut solved: Vec<(usize, Validity, SolverStats)> = Vec::new();
        if self.config.prefilter && !work.is_empty() {
            let mut prefilter_span = crate::telemetry::span("engine", "prefilter");
            let mut pre = Prefilter::new();
            work.retain(|&gi| {
                let proved = pre.proves(unique_goals[gi]);
                if proved {
                    solved.push((gi, Validity::Valid, SolverStats::default()));
                }
                !proved
            });
            self.statics
                .fetch_add(solved.len() as u64, Ordering::Relaxed);
            prefilter_span.arg("static_hits", solved.len());
        }
        let call_statics = solved.len() as u64;

        // Partition the unsolved goals into work units. Under incremental
        // discharge, goals of the shape `h ⇒ c` whose hypothesis lies in
        // the assertable linear fragment (see `prefilter::linear_bool`)
        // are grouped by shared hypothesis; a group of two or more is
        // discharged through one solver session (hypothesis asserted
        // once, each conclusion refuted in its own push/pop scope).
        // Preprocessing is context-free on that fragment, so asserting
        // the hypothesis conjunct-by-conjunct is verdict-equivalent to a
        // fresh solver. Everything else — quantified hypotheses, array
        // reads in the hypothesis, singleton groups — keeps the
        // fresh-solver path.
        //
        // With the prefilter on, the grouping key is the *normalized*
        // hypothesis — split into conjuncts, sliced to the conclusion's
        // free-variable cone, deduplicated, canonically sorted — and the
        // conclusion may be arbitrary (quantified, array-reading): the
        // scoped refutation of `¬c` is a single self-contained assert. A
        // member is *exact* only when its hypothesis was not weakened by
        // slicing and its conclusion also lies in the fragment; every
        // other member accepts `Valid` directly (refutation is sound
        // regardless of the conclusion's shape) and re-proves the full
        // original goal on a fresh solver for any other verdict. With
        // the prefilter off, grouping is PR 6's verbatim scheme —
        // hypothesis *and* conclusion in the fragment, keyed on the
        // verbatim structural hypothesis, all members exact — the
        // baseline the bench group-rate gauges compare against.
        enum Unit {
            /// A goal solved on its own fresh solver.
            Fresh(usize),
            /// Goals sharing one session: the hypothesis conjuncts to
            /// assert, then per member its goal index and whether the
            /// asserted hypothesis is exact (not weakened by slicing).
            Group {
                conjuncts: Vec<BTerm>,
                members: Vec<(usize, bool)>,
            },
        }
        let mut units: Vec<Unit> = Vec::new();
        if self.config.incremental {
            let mut by_hyp: HashMap<String, usize> = HashMap::new();
            for &gi in &work {
                match unique_goals[gi] {
                    BTerm::Implies(h, c)
                        if linear_bool(h) && (self.config.prefilter || linear_bool(c)) =>
                    {
                        let (key, conjuncts, exact) = if self.config.prefilter {
                            let norm = normalize(h, c);
                            let exact = norm.exact && linear_bool(c);
                            (norm.key, norm.conjuncts, exact)
                        } else {
                            (
                                relaxed_smt::intern::canonical_key(h),
                                vec![(**h).clone()],
                                true,
                            )
                        };
                        let next = units.len();
                        let ui = *by_hyp.entry(key).or_insert(next);
                        if ui == next {
                            units.push(Unit::Group {
                                conjuncts,
                                members: Vec::new(),
                            });
                        }
                        let Unit::Group { members, .. } = &mut units[ui] else {
                            unreachable!("hypothesis groups are Group units");
                        };
                        members.push((gi, exact));
                    }
                    _ => units.push(Unit::Fresh(gi)),
                }
            }
        } else {
            units.extend(work.iter().map(|&gi| Unit::Fresh(gi)));
        }

        // Solve the work units on the worker pool. Units — not goals —
        // are the unit of scheduling, and each unit's goals are solved in
        // generation order within it, so per-goal verdicts and statistics
        // are deterministic regardless of worker count.
        let workers = match opts.workers {
            Some(w) => DischargeConfig {
                workers: w,
                ..self.config.clone()
            }
            .effective_workers(work.len()),
            None => self.config.effective_workers(work.len()),
        };
        // Solve-span labels: the goal's cache key, bounded so one huge
        // formula cannot bloat the trace.
        let goal_label = |gi: usize| -> String {
            let key = keys[gi].render();
            if key.len() > 96 {
                key.chars().take(96).collect()
            } else {
                key
            }
        };
        // Attaches the solver-stats delta of one goal to its solve span.
        let span_stats = |span: &mut crate::telemetry::SpanGuard, stats: &SolverStats| {
            span.arg("conflicts", stats.sat.conflicts);
            span.arg("pivots", stats.pivots);
            span.arg("restarts", stats.sat.restarts);
        };
        let solve_fresh = |gi: usize| {
            let mut span = crate::telemetry::span("engine", "solve");
            if span.is_active() {
                span.arg("goal", goal_label(gi));
            }
            let mut solver =
                Solver::with_budgets(self.config.max_conflicts, self.config.branch_budget);
            let verdict = {
                let _check = crate::telemetry::span("solver", "check");
                solver.check_valid(unique_goals[gi])
            };
            let stats = solver.stats();
            if span.is_active() {
                span_stats(&mut span, &stats);
            }
            (gi, verdict, stats)
        };
        let solve_unit = |unit: &Unit| -> Vec<(usize, Validity, SolverStats)> {
            let (conjuncts, members) = match unit {
                Unit::Fresh(gi) => return vec![solve_fresh(*gi)],
                // A singleton group gains nothing from a session.
                Unit::Group { members, .. } if members.len() == 1 => {
                    return vec![solve_fresh(members[0].0)];
                }
                Unit::Group { conjuncts, members } => (conjuncts, members),
            };
            let mut session_span = crate::telemetry::span("solver", "session");
            if session_span.is_active() {
                session_span.arg("members", members.len());
                session_span.arg("conjuncts", conjuncts.len());
            }
            let mut solver =
                Solver::with_budgets(self.config.max_conflicts, self.config.branch_budget);
            let mut session = solver.session();
            for conjunct in conjuncts {
                session.assert(conjunct);
            }
            members
                .iter()
                .map(|&(gi, exact)| {
                    let BTerm::Implies(_, c) = unique_goals[gi] else {
                        unreachable!("grouped goals are implications");
                    };
                    let mut span = crate::telemetry::span("engine", "solve");
                    if span.is_active() {
                        span.arg("goal", goal_label(gi));
                    }
                    // Per-goal statistics are the session counters'
                    // advance over this one scoped check, so folding them
                    // per VC reconstructs the session totals exactly.
                    let before = session.stats();
                    let verdict = {
                        let _check = crate::telemetry::span("solver", "check");
                        session.check_valid(c)
                    };
                    let mut stats = session.stats().delta_since(&before);
                    if exact || matches!(verdict, Validity::Valid) {
                        if span.is_active() {
                            span_stats(&mut span, &stats);
                        }
                        return (gi, verdict, stats);
                    }
                    // The sliced hypothesis is strictly weaker than the
                    // original, so only `Valid` transfers; anything else
                    // re-proves the full goal on a fresh solver (its
                    // statistics fold into this goal's).
                    let (gi, verdict, fresh) = solve_fresh(gi);
                    stats.absorb(&fresh);
                    if span.is_active() {
                        span_stats(&mut span, &stats);
                    }
                    (gi, verdict, stats)
                })
                .collect()
        };
        let pool_solved: Vec<(usize, Validity, SolverStats)> = if workers <= 1 {
            units.iter().flat_map(solve_unit).collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let sink: Mutex<Vec<(usize, Validity, SolverStats)>> =
                Mutex::new(Vec::with_capacity(work.len()));
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        loop {
                            let k = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(unit) = units.get(k) else { break };
                            let outcome = solve_unit(unit);
                            sink.lock().expect("sink lock").extend(outcome);
                        }
                        // Scoped threads signal completion before their
                        // thread-local destructors run: flush this lane's
                        // spans before the scope joins, not after.
                        crate::telemetry::drain_thread();
                    });
                }
            });
            sink.into_inner().expect("sink lock")
        };
        solved.extend(pool_solved);
        solved.sort_unstable_by_key(|(gi, _, _)| *gi);
        let call_solve_us = elapsed_us(solve_started);
        self.solve_us.fetch_add(call_solve_us, Ordering::Relaxed);

        // Publish the new verdicts to the cross-call cache under this
        // call's owner tag.
        let publish_started = std::time::Instant::now();
        {
            let mut cache = self.cache.lock().expect("cache lock");
            for (gi, verdict, _) in &solved {
                cache.insert(
                    keys[*gi].clone(),
                    CachedVerdict {
                        verdict: verdict.clone(),
                        owner: opts.owner,
                        from_disk: false,
                        last_hit: now,
                    },
                );
            }
            if !solved.is_empty() {
                // Pending before dirty: a concurrent `append_pending`
                // clears `dirty` only when it observes an empty batch,
                // so the batch must be visible first.
                if self.store.is_some() {
                    self.pending
                        .lock()
                        .expect("pending lock")
                        .extend(solved.iter().map(|(gi, _, _)| keys[*gi].clone()));
                }
                self.dirty.store(true, std::sync::atomic::Ordering::Relaxed);
            }
        }
        call_cache_us += elapsed_us(publish_started);
        self.cache_us.fetch_add(call_cache_us, Ordering::Relaxed);
        let mut solved_stats: Vec<Option<SolverStats>> = vec![None; unique_goals.len()];
        for (gi, verdict, stats) in solved {
            verdicts[gi] = Some(verdict);
            solved_stats[gi] = Some(stats);
        }

        // Reassemble in generation order. The solver statistics of each
        // freshly solved goal are attached to its first occurrence; later
        // duplicates and cache hits carry zeroed stats and `cached: true`.
        let total = vcs.len() as u64;
        let mut report = Report::default();
        let mut first_seen: Vec<bool> = vec![false; unique_goals.len()];
        let mut call_cross = 0u64;
        let mut call_disk = 0u64;
        for (vc, gi) in vcs.into_iter().zip(&group_of) {
            let verdict = verdicts[*gi].clone().expect("every goal resolved");
            let fresh = !first_seen[*gi] && !from_cache[*gi];
            first_seen[*gi] = true;
            if !fresh && cross_owner[*gi] {
                call_cross += 1;
            }
            if !fresh && from_disk[*gi] {
                call_disk += 1;
            }
            let stats = if fresh {
                solved_stats[*gi].expect("solved goal has stats")
            } else {
                SolverStats::default()
            };
            if fresh {
                report.stats.absorb(&stats);
            }
            report.results.push(VcResult {
                vc,
                verdict,
                stats,
                cached: !fresh,
            });
        }

        let call_misses = solved_stats.iter().flatten().count() as u64;
        let call_hits = total - call_misses;
        self.hits.fetch_add(call_hits, Ordering::Relaxed);
        self.misses.fetch_add(call_misses, Ordering::Relaxed);
        self.cross.fetch_add(call_cross, Ordering::Relaxed);
        self.disk.fetch_add(call_disk, Ordering::Relaxed);
        report.engine = EngineStats {
            cache_hits: call_hits,
            cache_misses: call_misses,
            cross_hits: call_cross,
            disk_hits: call_disk,
            static_hits: call_statics,
            loaded: 0,
            persisted: 0,
            evicted: 0,
            unique_goals: call_misses,
            workers,
            // Vcgen happens upstream of the engine; the staged pipeline
            // fills this in on the stage report.
            elapsed_vcgen_ms: 0,
            elapsed_encode_ms: call_encode_us / 1000,
            elapsed_solve_ms: call_solve_us / 1000,
            elapsed_cache_ms: call_cache_us / 1000,
        };
        call_span.arg("solved", call_misses);
        drop(call_span);
        report
    }
}

impl Drop for DischargeEngine {
    fn drop(&mut self) {
        // Skip the rewrite when nothing changed since the last
        // load/persist: a fully warm session (or one already flushed
        // explicitly) costs no drop-time I/O.
        if !self.dirty.load(std::sync::atomic::Ordering::Relaxed) {
            return;
        }
        if let Some(path) = self.cache_path().map(std::path::Path::to_path_buf) {
            if let Err(e) = self.persist() {
                crate::diag::warn(format_args!(
                    "failed to persist verdict cache {}: {e}",
                    path.display()
                ));
            }
        }
    }
}

/// Encodes one obligation with a fresh bound-name context, yielding the
/// goal term the engine deduplicates, prefilters, and solves (and whose
/// canonical rendering is its cache key). Public so external tooling —
/// the group-rate gauges in the benchmarks and `paper_report` — can ask
/// [`crate::prefilter::group_keys`] about the very goals the engine sees.
pub fn encode_goal(vc: &Vc) -> BTerm {
    let mut ctx = EncodeCtx::new();
    match &vc.body {
        VcBody::Unary(p) => encode_formula(p, &mut ctx),
        VcBody::Rel(p) => encode_rel_formula(p, &mut ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcgen::Vc;
    use relaxed_lang::parse_formula;

    fn unary_vc(name: &str, source: &str) -> Vc {
        Vc {
            name: name.to_string(),
            context: "test".to_string(),
            body: VcBody::Unary(parse_formula(source).unwrap()),
            deps: Vec::new(),
        }
    }

    #[test]
    fn duplicate_goals_are_solved_once() {
        let engine = DischargeEngine::with_config(DischargeConfig::sequential());
        let vcs = vec![
            unary_vc("a", "x <= x"),
            unary_vc("b", "x <= x"),
            unary_vc("c", "x <= x + 1"),
        ];
        let report = engine.discharge(vcs);
        assert!(report.verified());
        assert_eq!(report.engine.unique_goals, 2);
        assert_eq!(report.engine.cache_misses, 2);
        assert_eq!(report.engine.cache_hits, 1);
        assert!(!report.results[0].cached);
        assert!(report.results[1].cached);
        assert_eq!(report.results[1].stats, SolverStats::default());
    }

    #[test]
    fn cache_persists_across_discharge_calls() {
        let engine = DischargeEngine::with_config(DischargeConfig::sequential());
        let vc = || unary_vc("a", "x + 1 >= x");
        let first = engine.discharge(vec![vc()]);
        assert_eq!(first.engine.cache_hits, 0);
        let second = engine.discharge(vec![vc()]);
        assert_eq!(second.engine.cache_hits, 1);
        assert_eq!(second.engine.cache_misses, 0);
        assert!(second.results[0].cached);
        assert_eq!(second.results[0].verdict, first.results[0].verdict);
        let totals = engine.stats();
        assert_eq!(totals.cache_hits, 1);
        assert_eq!(totals.cache_misses, 1);
        assert_eq!(totals.unique_goals, 1);
    }

    #[test]
    fn parallel_and_sequential_reports_agree() {
        let vcs: Vec<Vc> = (0..12)
            .map(|i| {
                // A mix of valid and invalid goals with some duplicates.
                let f = match i % 3 {
                    0 => format!("x + {i} >= x"),
                    1 => format!("x >= {i}"),
                    _ => "y <= y".to_string(),
                };
                unary_vc(&format!("vc{i}"), &f)
            })
            .collect();
        let seq =
            DischargeEngine::with_config(DischargeConfig::sequential()).discharge(vcs.clone());
        let par = DischargeEngine::with_config(DischargeConfig::with_workers(4)).discharge(vcs);
        assert_eq!(seq.results.len(), par.results.len());
        for (a, b) in seq.results.iter().zip(&par.results) {
            assert_eq!(a.verdict, b.verdict, "verdict mismatch on {}", a.vc);
            assert_eq!(a.cached, b.cached);
            assert_eq!(a.stats, b.stats);
        }
        assert_eq!(seq.stats, par.stats);
        assert_eq!(seq.engine.cache_hits, par.engine.cache_hits);
        assert_eq!(seq.engine.unique_goals, par.engine.unique_goals);
    }

    #[test]
    fn aggregate_stats_equal_per_vc_fold() {
        let vcs = vec![
            unary_vc("a", "x <= x"),
            unary_vc("b", "x >= 5"),
            unary_vc("c", "x <= x"),
        ];
        let report = DischargeEngine::with_config(DischargeConfig::sequential()).discharge(vcs);
        let mut folded = SolverStats::default();
        for r in &report.results {
            folded.absorb(&r.stats);
        }
        assert_eq!(report.stats, folded);
        // `x <= x` is statically proved (zero solver queries); `x >= 5`
        // still reaches the solver.
        assert!(report.stats.queries >= 1);
        assert_eq!(report.engine.static_hits, 1);
    }

    #[test]
    fn empty_vc_list_discharges_cleanly() {
        let report = DischargeEngine::new().discharge(Vec::new());
        assert!(report.is_empty());
        assert!(report.verified());
        assert_eq!(report.engine.unique_goals, 0);
    }

    #[test]
    fn cache_max_evicts_least_recently_hit_on_persist() {
        let path =
            std::env::temp_dir().join(format!("relaxed-engine-evict-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut engine =
            DischargeEngine::with_cache_file(DischargeConfig::sequential(), path.clone());
        engine.set_cache_max(1);
        engine.discharge(vec![unary_vc("a", "x <= x"), unary_vc("b", "x <= x + 1")]);
        // Re-hit the first goal: it becomes the most recently hit.
        engine.discharge(vec![unary_vc("a", "x <= x")]);
        let written = engine.persist().unwrap();
        assert_eq!(written, 1, "cap must bound the store");
        let stats = engine.stats();
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.unique_goals, 1, "eviction also compacts memory");
        drop(engine);
        // The survivor is the recently-hit goal: a fresh session answers
        // it from disk and must re-solve the evicted one.
        let warm = DischargeEngine::with_cache_file(DischargeConfig::sequential(), path.clone());
        assert_eq!(warm.stats().loaded, 1);
        let report = warm.discharge(vec![unary_vc("a", "x <= x"), unary_vc("b", "x <= x + 1")]);
        assert_eq!(report.engine.disk_hits, 1);
        assert_eq!(report.engine.cache_misses, 1);
        drop(warm);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unbounded_engine_never_evicts() {
        let path = std::env::temp_dir().join(format!(
            "relaxed-engine-noevict-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let engine = DischargeEngine::with_cache_file(DischargeConfig::sequential(), path.clone());
        engine.discharge(vec![unary_vc("a", "x <= x"), unary_vc("b", "x <= x + 1")]);
        assert_eq!(engine.persist().unwrap(), 2);
        assert_eq!(engine.stats().evicted, 0);
        drop(engine);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn refresh_from_disk_merges_concurrent_writers() {
        let path = std::env::temp_dir().join(format!(
            "relaxed-engine-refresh-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        // Session A starts against an empty store.
        let a = DischargeEngine::with_cache_file(DischargeConfig::sequential(), path.clone());
        assert_eq!(a.refresh_from_disk(), 0, "nothing to merge yet");
        // Session B (a sibling process in shard terms) persists a verdict.
        let b = DischargeEngine::with_cache_file(DischargeConfig::sequential(), path.clone());
        b.discharge(vec![unary_vc("g", "y + 1 >= y")]);
        b.persist().unwrap();
        // A merges it and answers the goal with zero solver work, as a
        // disk hit.
        assert_eq!(a.refresh_from_disk(), 1);
        assert_eq!(a.refresh_from_disk(), 0, "idempotent once merged");
        let report = a.discharge(vec![unary_vc("g", "y + 1 >= y")]);
        assert_eq!(report.engine.cache_misses, 0);
        assert_eq!(report.engine.disk_hits, 1);
        assert_eq!(a.stats().loaded, 1);
        assert_eq!(
            DischargeEngine::new().refresh_from_disk(),
            0,
            "in-memory engines have nothing to refresh"
        );
        drop(a);
        drop(b);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_pending_publishes_increments_without_rewrites() {
        let path = std::env::temp_dir().join(format!(
            "relaxed-engine-append-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        // Two engines on one store, as two shard workers would be. Each
        // appends only its own fresh verdicts; neither flush can drop the
        // other's, even though neither ever reloaded the file.
        let a = DischargeEngine::with_cache_file(DischargeConfig::sequential(), path.clone());
        let b = DischargeEngine::with_cache_file(DischargeConfig::sequential(), path.clone());
        a.discharge(vec![unary_vc("a", "x <= x")]);
        assert_eq!(a.append_pending().unwrap(), 1);
        assert_eq!(a.append_pending().unwrap(), 0, "batch drains");
        b.discharge(vec![unary_vc("b", "y <= y + 1")]);
        assert_eq!(b.append_pending().unwrap(), 1);
        drop(a);
        drop(b);
        let merged = DischargeEngine::with_cache_file(DischargeConfig::sequential(), path.clone());
        assert_eq!(merged.stats().loaded, 2, "union of both writers");
        let report = merged.discharge(vec![unary_vc("a", "x <= x"), unary_vc("b", "y <= y + 1")]);
        assert_eq!(report.engine.cache_misses, 0);
        assert_eq!(report.engine.disk_hits, 2);
        assert_eq!(
            DischargeEngine::new().append_pending().unwrap(),
            0,
            "in-memory engines have nothing to append"
        );
        drop(merged);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn clean_appended_engine_skips_drop_rewrite() {
        let path = std::env::temp_dir().join(format!(
            "relaxed-engine-append-clean-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let engine = DischargeEngine::with_cache_file(DischargeConfig::sequential(), path.clone());
        engine.discharge(vec![unary_vc("a", "x <= x")]);
        engine.append_pending().unwrap();
        let flushed_at = std::fs::metadata(&path).unwrap().modified().unwrap();
        let flushed_len = std::fs::metadata(&path).unwrap().len();
        drop(engine); // everything already on disk: no drop-time rewrite
        let meta = std::fs::metadata(&path).unwrap();
        assert_eq!(meta.len(), flushed_len);
        assert_eq!(meta.modified().unwrap(), flushed_at);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn capped_persist_sheds_merged_but_unused_entries_first() {
        let path = std::env::temp_dir().join(format!(
            "relaxed-engine-merge-tier-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut a = DischargeEngine::with_cache_file(DischargeConfig::sequential(), path.clone());
        a.set_cache_max(1);
        // A solves (and therefore "hit") its own goal…
        a.discharge(vec![unary_vc("mine", "x <= x")]);
        // …then merges a sibling's never-used verdict from the store.
        let b = DischargeEngine::with_cache_file(DischargeConfig::sequential(), path.clone());
        b.discharge(vec![unary_vc("theirs", "y >= y - 1")]);
        b.append_pending().unwrap();
        assert_eq!(a.refresh_from_disk(), 1);
        // Compaction must keep the goal this session used, not the merged
        // bystander.
        assert_eq!(a.persist().unwrap(), 1);
        drop(a);
        drop(b);
        let warm = DischargeEngine::with_cache_file(DischargeConfig::sequential(), path.clone());
        let report = warm.discharge(vec![unary_vc("mine", "x <= x")]);
        assert_eq!(report.engine.disk_hits, 1, "the used goal survived");
        drop(warm);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn refresh_skips_unchanged_files() {
        let path = std::env::temp_dir().join(format!(
            "relaxed-engine-refresh-guard-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let a = DischargeEngine::with_cache_file(DischargeConfig::sequential(), path.clone());
        // Missing file: polling costs a stat, merges nothing.
        assert_eq!(a.refresh_from_disk(), 0);
        let b = DischargeEngine::with_cache_file(DischargeConfig::sequential(), path.clone());
        b.discharge(vec![unary_vc("g", "z >= z")]);
        b.append_pending().unwrap();
        assert_eq!(a.refresh_from_disk(), 1, "file changed: reload and merge");
        assert_eq!(a.refresh_from_disk(), 0, "file unchanged: stat-only skip");
        drop(a);
        drop(b);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn budget_injection_reaches_the_solver() {
        // This goal is invalid (x=10, y=11, z=0 gives a sum of 21): under
        // starvation budgets the solver may answer Invalid or give up with
        // Unknown, but a budget-starved engine must never claim Valid.
        let config = DischargeConfig {
            workers: 1,
            max_conflicts: 1,
            branch_budget: 1,
            ..DischargeConfig::default()
        };
        let engine = DischargeEngine::with_config(config);
        assert_eq!(engine.config().max_conflicts, 1);
        let vcs = vec![unary_vc(
            "hard",
            "(x <= 0 || x >= 10) && (y <= 0 || y >= 10) && (z <= 0 || z >= 10)
             ==> x + y + z >= 30 || x + y + z <= 20",
        )];
        let report = engine.discharge(vcs);
        assert!(!report.results[0].verdict.is_valid());
    }

    /// A VC corpus that exercises the grouped session path: several
    /// implications over one shared hypothesis (mixed valid and
    /// invalid), a second smaller group, a quantified (ineligible)
    /// goal, and a goal that is no implication at all.
    fn grouped_vcs() -> Vec<Vc> {
        let mut vcs: Vec<Vc> = (0..6)
            .map(|i| {
                let f = match i % 3 {
                    0 => format!("x >= 0 && x <= 9 ==> x + {i} >= 0"),
                    1 => format!("x >= 0 && x <= 9 ==> x >= {i}"),
                    _ => format!("y >= 2 ==> y + {i} >= 3"),
                };
                unary_vc(&format!("vc{i}"), &f)
            })
            .collect();
        vcs.push(unary_vc("q", "forall b. b >= x ==> b + 1 > x"));
        vcs.push(unary_vc("plain", "z <= z"));
        vcs
    }

    #[test]
    fn incremental_discharge_matches_fresh_solvers() {
        // Prefilter pinned off on both sides so every goal reaches a
        // solver and the session path is what this test compares.
        let vcs = grouped_vcs();
        let fresh = DischargeEngine::with_config(DischargeConfig {
            incremental: false,
            prefilter: false,
            ..DischargeConfig::sequential()
        })
        .discharge(vcs.clone());
        let scoped = DischargeEngine::with_config(DischargeConfig {
            prefilter: false,
            ..DischargeConfig::sequential()
        })
        .discharge(vcs);
        assert_eq!(fresh.results.len(), scoped.results.len());
        for (a, b) in fresh.results.iter().zip(&scoped.results) {
            // Status-level equivalence: an `Invalid` countermodel is a
            // witness, and the warm session may find a different one.
            assert_eq!(
                std::mem::discriminant(&a.verdict),
                std::mem::discriminant(&b.verdict),
                "verdict mismatch on {}: {:?} vs {:?}",
                a.vc,
                a.verdict,
                b.verdict
            );
            assert_eq!(a.cached, b.cached);
        }
        assert_eq!(fresh.engine.cache_misses, scoped.engine.cache_misses);
        // One query per freshly solved goal either way: the session folds
        // a single `queries` tick per scoped check.
        assert_eq!(fresh.stats.queries, scoped.stats.queries);
    }

    #[test]
    fn incremental_discharge_is_schedule_independent() {
        let vcs = grouped_vcs();
        let seq =
            DischargeEngine::with_config(DischargeConfig::sequential()).discharge(vcs.clone());
        let par = DischargeEngine::with_config(DischargeConfig::with_workers(4)).discharge(vcs);
        assert_eq!(seq.results.len(), par.results.len());
        for (a, b) in seq.results.iter().zip(&par.results) {
            assert_eq!(a.verdict, b.verdict, "verdict mismatch on {}", a.vc);
            assert_eq!(a.cached, b.cached);
            assert_eq!(a.stats, b.stats, "stats mismatch on {}", a.vc);
        }
        assert_eq!(seq.stats, par.stats);
        assert_eq!(seq.engine.static_hits, par.engine.static_hits);
    }

    #[test]
    fn prefilter_discharge_is_verdict_identical() {
        // The full grouped corpus plus a statically provable straggler,
        // discharged with the static analysis layer on and off: verdict
        // statuses must be identical, and the prefiltered run must
        // discharge at least one goal with zero solver work.
        let mut vcs = grouped_vcs();
        vcs.push(unary_vc("tauto", "w + 1 >= w"));
        let on = DischargeEngine::with_config(DischargeConfig::sequential()).discharge(vcs.clone());
        let off = DischargeEngine::with_config(DischargeConfig {
            prefilter: false,
            ..DischargeConfig::sequential()
        })
        .discharge(vcs);
        assert_eq!(on.results.len(), off.results.len());
        for (a, b) in on.results.iter().zip(&off.results) {
            assert_eq!(
                std::mem::discriminant(&a.verdict),
                std::mem::discriminant(&b.verdict),
                "verdict mismatch on {}: {:?} vs {:?}",
                a.vc,
                a.verdict,
                b.verdict
            );
            assert_eq!(a.cached, b.cached);
        }
        assert!(on.engine.static_hits >= 1, "the tautology is a static hit");
        assert!(
            on.engine.static_hits <= on.engine.cache_misses,
            "static hits are a subset of this call's solved goals"
        );
        assert_eq!(off.engine.static_hits, 0);
        // A statically proved goal carries zero solver statistics.
        let tauto = on.results.iter().find(|r| r.vc.name == "tauto").unwrap();
        assert!(tauto.verdict.is_valid());
        assert_eq!(tauto.stats, SolverStats::default());
    }

    #[test]
    fn sliced_invalid_reproves_the_full_goal() {
        // Both hypotheses slice to `x >= 0` (the y/z conjuncts cannot
        // reach the conclusion), so the two goals share one session —
        // but the first goal's *full* hypothesis is unsatisfiable
        // (adding the two-variable conjuncts forces `y >= 1`, against
        // `y <= 0` — a contradiction the prefilter cannot see, since it
        // never sums difference bounds), so dropping conjuncts flips
        // its session verdict to Invalid. The fallback must re-prove
        // the full goal on a fresh solver and restore Valid; the second
        // goal is genuinely invalid and must stay so.
        let vcs = vec![
            unary_vc(
                "vacuous",
                "x >= 0 && y + z >= 1 && y - z >= 1 && y <= 0 ==> x >= 5",
            ),
            unary_vc("invalid", "x >= 0 && y + z >= 1 ==> x >= 7"),
        ];
        let report = DischargeEngine::with_config(DischargeConfig::sequential()).discharge(vcs);
        assert!(
            report.results[0].verdict.is_valid(),
            "unsat full hypothesis ⇒ valid, despite the sliced session disagreeing"
        );
        assert!(!report.results[1].verdict.is_valid());
        assert_eq!(
            report.engine.static_hits, 0,
            "neither goal is interval-provable"
        );
        // Equivalence with plain fresh-solver discharge.
        let vcs = vec![
            unary_vc(
                "vacuous",
                "x >= 0 && y + z >= 1 && y - z >= 1 && y <= 0 ==> x >= 5",
            ),
            unary_vc("invalid", "x >= 0 && y + z >= 1 ==> x >= 7"),
        ];
        let plain = DischargeEngine::with_config(DischargeConfig {
            incremental: false,
            prefilter: false,
            ..DischargeConfig::sequential()
        })
        .discharge(vcs);
        assert!(plain.results[0].verdict.is_valid());
        assert!(!plain.results[1].verdict.is_valid());
    }

    #[test]
    fn normalized_grouping_raises_the_group_rate() {
        // Verbatim-different hypotheses with a shared relevant core:
        // PR 6's verbatim grouping sees three distinct hypotheses, the
        // normalized grouping sees one.
        let goals = [
            "x >= 0 && x <= 9 && a >= 1 ==> x <= 20",
            "x <= 9 && x >= 0 && b <= 4 ==> x <= 21",
            "c == 7 && x >= 0 && x <= 9 ==> x <= 22",
        ];
        let mut verbatim = std::collections::HashSet::new();
        let mut normalized = std::collections::HashSet::new();
        for source in goals {
            let vc = unary_vc("g", source);
            let keys = crate::prefilter::group_keys(&encode_goal(&vc)).expect("linear goal");
            verbatim.insert(keys.verbatim.expect("fully linear goal"));
            normalized.insert(keys.normalized);
        }
        assert_eq!(verbatim.len(), 3);
        assert_eq!(normalized.len(), 1);
    }
}
