//! Static analyses over relaxed programs: array-variable detection, the
//! relaxation-dependence (taint) analysis behind automated noninterference
//! reasoning, and the spec-coverage [`lint`] pass built on top of it.

use crate::verify::Spec;
use relaxed_lang::free::{bool_expr_vars, formula_vars, int_expr_vars};
use relaxed_lang::{BoolExpr, Formula, IntExpr, Program, RelFormula, RelIntExpr, Stmt, Var};
use std::collections::BTreeSet;
use std::fmt;

/// Variables used as arrays (`x[e]` or `len(x)`) anywhere in the statement
/// or its annotations.
///
/// The language is untyped, so "is an array" is a usage property; the VC
/// generator needs it to route `havoc`/`relax`/store targets to the right
/// rule.
pub fn array_vars(s: &Stmt) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    walk_stmt(s, &mut out);
    out
}

/// Array variables used in a unary formula.
pub fn formula_array_vars(p: &Formula) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    walk_formula(p, &mut out);
    out
}

/// Array variables used in a relational formula.
pub fn rel_formula_array_vars(p: &RelFormula) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    walk_rel_formula(p, &mut out);
    out
}

fn walk_int(e: &IntExpr, out: &mut BTreeSet<Var>) {
    match e {
        IntExpr::Const(_) | IntExpr::Var(_) => {}
        IntExpr::Bin(_, lhs, rhs) => {
            walk_int(lhs, out);
            walk_int(rhs, out);
        }
        IntExpr::Select(v, index) => {
            out.insert(v.clone());
            walk_int(index, out);
        }
        IntExpr::Len(v) => {
            out.insert(v.clone());
        }
    }
}

fn walk_bool(b: &BoolExpr, out: &mut BTreeSet<Var>) {
    match b {
        BoolExpr::Const(_) => {}
        BoolExpr::Cmp(_, lhs, rhs) => {
            walk_int(lhs, out);
            walk_int(rhs, out);
        }
        BoolExpr::Bin(_, lhs, rhs) => {
            walk_bool(lhs, out);
            walk_bool(rhs, out);
        }
        BoolExpr::Not(inner) => walk_bool(inner, out),
    }
}

fn walk_formula(p: &Formula, out: &mut BTreeSet<Var>) {
    match p {
        Formula::True | Formula::False => {}
        Formula::Cmp(_, lhs, rhs) => {
            walk_int(lhs, out);
            walk_int(rhs, out);
        }
        Formula::And(l, r) | Formula::Or(l, r) | Formula::Implies(l, r) => {
            walk_formula(l, out);
            walk_formula(r, out);
        }
        Formula::Not(inner) => walk_formula(inner, out),
        Formula::Exists(_, body) | Formula::Forall(_, body) => walk_formula(body, out),
    }
}

fn walk_rel_int(e: &RelIntExpr, out: &mut BTreeSet<Var>) {
    match e {
        RelIntExpr::Const(_) | RelIntExpr::Var(_, _) => {}
        RelIntExpr::Bin(_, lhs, rhs) => {
            walk_rel_int(lhs, out);
            walk_rel_int(rhs, out);
        }
        RelIntExpr::Select(v, _, index) => {
            out.insert(v.clone());
            walk_rel_int(index, out);
        }
        RelIntExpr::Len(v, _) => {
            out.insert(v.clone());
        }
    }
}

fn walk_rel_formula(p: &RelFormula, out: &mut BTreeSet<Var>) {
    match p {
        RelFormula::True | RelFormula::False => {}
        RelFormula::Cmp(_, lhs, rhs) => {
            walk_rel_int(lhs, out);
            walk_rel_int(rhs, out);
        }
        RelFormula::And(l, r) | RelFormula::Or(l, r) | RelFormula::Implies(l, r) => {
            walk_rel_formula(l, out);
            walk_rel_formula(r, out);
        }
        RelFormula::Not(inner) => walk_rel_formula(inner, out),
        RelFormula::Exists(_, _, body) | RelFormula::Forall(_, _, body) => {
            walk_rel_formula(body, out)
        }
    }
}

fn walk_stmt(s: &Stmt, out: &mut BTreeSet<Var>) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(_, e) => walk_int(e, out),
        Stmt::Store(v, index, value) => {
            out.insert(v.clone());
            walk_int(index, out);
            walk_int(value, out);
        }
        Stmt::Havoc(_, b) | Stmt::Relax(_, b) | Stmt::Assume(b) | Stmt::Assert(b) => {
            walk_bool(b, out)
        }
        Stmt::Relate(_, b) => {
            walk_rel_formula(&RelFormula::from_rel_bool_expr(b), out);
        }
        Stmt::If(i) => {
            walk_bool(&i.cond, out);
            if let Some(c) = &i.diverge {
                if let Some(p) = &c.pre_o {
                    walk_formula(p, out);
                }
                if let Some(p) = &c.pre_r {
                    walk_formula(p, out);
                }
                walk_formula(&c.post_o, out);
                walk_formula(&c.post_r, out);
            }
            walk_stmt(&i.then_branch, out);
            walk_stmt(&i.else_branch, out);
        }
        Stmt::While(w) => {
            walk_bool(&w.cond, out);
            if let Some(inv) = &w.invariant {
                walk_formula(inv, out);
            }
            if let Some(rinv) = &w.rel_invariant {
                walk_rel_formula(rinv, out);
            }
            if let Some(c) = &w.diverge {
                if let Some(p) = &c.pre_o {
                    walk_formula(p, out);
                }
                if let Some(p) = &c.pre_r {
                    walk_formula(p, out);
                }
                walk_formula(&c.post_o, out);
                walk_formula(&c.post_r, out);
            }
            walk_stmt(&w.body, out);
        }
        Stmt::Seq(ss) => {
            for s in ss {
                walk_stmt(s, out);
            }
        }
    }
}

/// Computes the set of variables whose *relaxed-execution* values may
/// differ from their original-execution values — the relaxation-dependence
/// ("taint") analysis.
///
/// Seeds: every `relax` target. Propagation: data flow through
/// assignments/stores and control flow through tainted branch/loop
/// conditions (anything assigned under tainted control is tainted, since
/// the two executions may take different paths). `havoc` targets are *not*
/// seeded: the paper's relational havoc picks the values for both
/// executions — but a havoc whose predicate reads tainted variables, or
/// that sits under tainted control flow, taints its targets.
///
/// The complement of the result is the set the automated noninterference
/// invariant `x<o> == x<r>` is sound for; see
/// [`crate::noninterference`].
pub fn relaxation_tainted(s: &Stmt) -> BTreeSet<Var> {
    let mut tainted: BTreeSet<Var> = BTreeSet::new();
    // Iterate to a fixpoint; the program is finite so this terminates.
    loop {
        let before = tainted.len();
        taint_pass(s, false, &mut tainted);
        if tainted.len() == before {
            return tainted;
        }
    }
}

fn expr_tainted(vars: &BTreeSet<Var>, tainted: &BTreeSet<Var>) -> bool {
    vars.iter().any(|v| tainted.contains(v))
}

fn taint_pass(s: &Stmt, under_tainted_control: bool, tainted: &mut BTreeSet<Var>) {
    match s {
        Stmt::Skip | Stmt::Assume(_) | Stmt::Assert(_) | Stmt::Relate(_, _) => {}
        Stmt::Assign(x, e) => {
            if under_tainted_control || expr_tainted(&int_expr_vars(e), tainted) {
                tainted.insert(x.clone());
            }
        }
        Stmt::Store(x, index, value) => {
            let mut vars = int_expr_vars(index);
            vars.extend(int_expr_vars(value));
            if under_tainted_control || expr_tainted(&vars, tainted) {
                tainted.insert(x.clone());
            }
        }
        Stmt::Relax(targets, _) => {
            tainted.extend(targets.iter().cloned());
        }
        Stmt::Havoc(targets, pred) => {
            if under_tainted_control || expr_tainted(&bool_expr_vars(pred), tainted) {
                tainted.extend(targets.iter().cloned());
            }
        }
        Stmt::If(i) => {
            let cond_tainted =
                under_tainted_control || expr_tainted(&bool_expr_vars(&i.cond), tainted);
            taint_pass(&i.then_branch, cond_tainted, tainted);
            taint_pass(&i.else_branch, cond_tainted, tainted);
        }
        Stmt::While(w) => {
            let cond_tainted =
                under_tainted_control || expr_tainted(&bool_expr_vars(&w.cond), tainted);
            taint_pass(&w.body, cond_tainted, tainted);
        }
        Stmt::Seq(ss) => {
            for s in ss {
                taint_pass(s, under_tainted_control, tainted);
            }
        }
    }
}

/// Machine-readable category of a spec-coverage lint warning.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LintCode {
    /// The postcondition depends on a relaxation-tainted variable that no
    /// acceptability predicate (`rel_post`, `relate`, `rinvariant`)
    /// constrains: the proof has no bridge from original to relaxed
    /// reasoning for it.
    UnconstrainedTaint,
    /// A `relax` predicate that does not mention any of its targets: the
    /// relaxed values are completely unconstrained.
    VacuousRelax,
    /// A loop-invariant conjunct over variables the loop never mentions
    /// (not in the condition, not read or written by the body): it holds
    /// trivially across iterations and is disconnected from everything
    /// the loop does. Conjuncts over variables the body merely *reads*
    /// are not flagged — carrying a frame fact (e.g. an array-length
    /// bound) through a loop is the normal, load-bearing use.
    InertInvariant,
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LintCode::UnconstrainedTaint => "unconstrained-taint",
            LintCode::VacuousRelax => "vacuous-relax",
            LintCode::InertInvariant => "inert-invariant",
        })
    }
}

/// One structured warning from the spec-coverage [`lint`] pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AnalysisWarning {
    /// The warning category.
    pub code: LintCode,
    /// Where in the program/spec the warning points (e.g. `var FF`,
    /// `relax #1`, `loop #2`).
    pub site: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for AnalysisWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.code, self.site, self.message)
    }
}

/// The spec-coverage lint: purely static checks that flag acceptability
/// specifications unlikely to mean what was intended. None of the
/// warnings affect verification verdicts — a warned program can still
/// verify, and a quiet one can still fail — they are review aids.
///
/// * [`LintCode::UnconstrainedTaint`] — a variable in
///   [`relaxation_tainted`] that the unary postcondition reads but no
///   acceptability predicate constrains;
/// * [`LintCode::VacuousRelax`] — a `relax (X) st (B)` whose `B` never
///   mentions `X` (scalar targets only: arrays *require* the predicate
///   `true`, see `VcgenError::ArrayChoiceWithPredicate`);
/// * [`LintCode::InertInvariant`] — an `invariant` conjunct over
///   variables the loop never mentions.
pub fn lint(program: &Program, spec: &Spec) -> Vec<AnalysisWarning> {
    let body = program.body();
    let mut out = Vec::new();

    let tainted = relaxation_tainted(body);
    let post_vars = formula_vars(&spec.post);
    let constrained = crate::noninterference::acceptability_constrained(program, spec);
    for v in &tainted {
        if post_vars.contains(v) && !constrained.contains(v) {
            out.push(AnalysisWarning {
                code: LintCode::UnconstrainedTaint,
                site: format!("var {}", v.name()),
                message: format!(
                    "postcondition depends on relaxation-tainted `{}`, but no \
                     acceptability predicate (rel_post, relate, rinvariant) constrains it",
                    v.name()
                ),
            });
        }
    }

    let arrays = array_vars(body);
    let mut walker = LintWalker {
        arrays: &arrays,
        relax_idx: 0,
        loop_idx: 0,
        out: &mut out,
    };
    walker.walk(body);
    out
}

struct LintWalker<'a> {
    arrays: &'a BTreeSet<Var>,
    relax_idx: usize,
    loop_idx: usize,
    out: &'a mut Vec<AnalysisWarning>,
}

impl LintWalker<'_> {
    fn walk(&mut self, s: &Stmt) {
        match s {
            Stmt::Relax(targets, pred) => {
                self.relax_idx += 1;
                let pred_vars = bool_expr_vars(pred);
                let mentions_target = targets.iter().any(|t| pred_vars.contains(t));
                // `relax (a) st (true)` over arrays is the *required*
                // form (array choices reject non-trivial predicates), so
                // it is not vacuous.
                let required_array_form = matches!(pred, BoolExpr::Const(true))
                    && targets.iter().all(|t| self.arrays.contains(t));
                if !mentions_target && !required_array_form {
                    let names: Vec<&str> = targets.iter().map(Var::name).collect();
                    self.out.push(AnalysisWarning {
                        code: LintCode::VacuousRelax,
                        site: format!("relax #{}", self.relax_idx),
                        message: format!(
                            "predicate never mentions relaxed target{} {}; the \
                             relaxed value is completely unconstrained",
                            if names.len() == 1 { "" } else { "s" },
                            names.join(", ")
                        ),
                    });
                }
            }
            Stmt::While(w) => {
                self.loop_idx += 1;
                let idx = self.loop_idx;
                if let Some(inv) = &w.invariant {
                    let mentioned = {
                        let mut vars = w.body.all_vars();
                        vars.extend(bool_expr_vars(&w.cond));
                        vars
                    };
                    for conjunct in crate::vcgen::formula_conjuncts(inv) {
                        let vars = formula_vars(conjunct);
                        let inert = !vars.is_empty() && vars.iter().all(|v| !mentioned.contains(v));
                        if inert {
                            self.out.push(AnalysisWarning {
                                code: LintCode::InertInvariant,
                                site: format!("loop #{idx}"),
                                message: format!(
                                    "invariant conjunct `{conjunct}` mentions no variable \
                                     the loop tests, reads, or writes; it is disconnected \
                                     from the loop"
                                ),
                            });
                        }
                    }
                }
                self.walk(&w.body);
            }
            Stmt::If(i) => {
                self.walk(&i.then_branch);
                self.walk(&i.else_branch);
            }
            Stmt::Seq(ss) => {
                for s in ss {
                    self.walk(s);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxed_lang::parse_stmt;

    fn vars(names: &[&str]) -> BTreeSet<Var> {
        names.iter().map(Var::new).collect()
    }

    #[test]
    fn arrays_detected_from_uses() {
        let s = parse_stmt("x = a[0]; b[1] = x; y = len(d);").unwrap();
        assert_eq!(array_vars(&s), vars(&["a", "b", "d"]));
    }

    #[test]
    fn relax_targets_are_tainted() {
        let s = parse_stmt("relax (x) st (true); y = x + 1; z = w;").unwrap();
        assert_eq!(relaxation_tainted(&s), vars(&["x", "y"]));
    }

    #[test]
    fn control_dependence_taints() {
        let s = parse_stmt(
            "relax (x) st (true);
             if (x > 0) { y = 1; } else { skip; }
             z = 2;",
        )
        .unwrap();
        // y is assigned under a tainted branch; z is not.
        assert_eq!(relaxation_tainted(&s), vars(&["x", "y"]));
    }

    #[test]
    fn taint_reaches_fixpoint_through_loops() {
        // The taint flows x → y on iteration 2 only if the pass iterates.
        let s = parse_stmt(
            "relax (x) st (true);
             while (i < n) { y = c; c = x; i = i + 1; }",
        )
        .unwrap();
        let t = relaxation_tainted(&s);
        assert!(t.contains(&Var::new("c")));
        assert!(
            t.contains(&Var::new("y")),
            "taint must flow through c into y"
        );
        assert!(!t.contains(&Var::new("i")));
    }

    #[test]
    fn havoc_is_untainted_by_default() {
        let s = parse_stmt("havoc (x) st (0 <= x); y = x;").unwrap();
        assert!(relaxation_tainted(&s).is_empty());
    }

    #[test]
    fn havoc_under_tainted_predicate_taints() {
        let s = parse_stmt("relax (t) st (true); havoc (x) st (x > t);").unwrap();
        assert_eq!(relaxation_tainted(&s), vars(&["t", "x"]));
    }

    #[test]
    fn water_kernel_taint_shape() {
        // §5.2: RS is relaxed; K and len_FF stay synchronized; FF is
        // tainted because its store sits under an RS-dependent branch.
        let s = parse_stmt(
            "relax (RS) st (true);
             K = 0;
             while (K < N) {
               if (RS[K] < gCUT2) { FF[K] = RS[K] * 2; } else { skip; }
               K = K + 1;
             }",
        )
        .unwrap();
        let t = relaxation_tainted(&s);
        assert!(t.contains(&Var::new("RS")));
        assert!(t.contains(&Var::new("FF")));
        assert!(!t.contains(&Var::new("K")));
        assert!(!t.contains(&Var::new("N")));
    }

    fn spec(post: &str, rel_post: &str) -> Spec {
        Spec {
            pre: Formula::True,
            post: relaxed_lang::parse_formula(post).unwrap(),
            rel_pre: RelFormula::True,
            rel_post: relaxed_lang::parse_rel_formula(rel_post).unwrap(),
        }
    }

    fn codes(warnings: &[AnalysisWarning]) -> Vec<LintCode> {
        warnings.iter().map(|w| w.code).collect()
    }

    #[test]
    fn lint_flags_unconstrained_tainted_postcondition_variable() {
        let p = relaxed_lang::parse_program(
            "relax (x) st (x <= e);
             y = x + 1;",
        )
        .unwrap();
        // `y` is tainted and the postcondition reads it, but nothing
        // relational constrains it.
        let warnings = lint(&p, &spec("y >= 0", "true"));
        assert_eq!(codes(&warnings), vec![LintCode::UnconstrainedTaint]);
        assert_eq!(warnings[0].site, "var y");
        // Constraining it through rel_post silences the warning …
        assert!(lint(&p, &spec("y >= 0", "y<o> - y<r> <= e<o>")).is_empty());
        // … and so does a `relate` assertion on the same variable.
        let related = relaxed_lang::parse_program(
            "relax (x) st (x <= e);
             y = x + 1;
             relate l : y<o> - y<r> <= e<o>;",
        )
        .unwrap();
        assert!(lint(&related, &spec("y >= 0", "true")).is_empty());
    }

    #[test]
    fn lint_flags_vacuous_scalar_relax_but_not_required_array_form() {
        let p = relaxed_lang::parse_program("relax (x) st (0 <= w); y = x;").unwrap();
        let warnings = lint(&p, &spec("true", "true"));
        assert_eq!(codes(&warnings), vec![LintCode::VacuousRelax]);
        assert_eq!(warnings[0].site, "relax #1");
        // Arrays must use `st (true)` (ArrayChoiceWithPredicate), so the
        // required form is not vacuous.
        let arrays = relaxed_lang::parse_program("relax (a) st (true); x = a[0];").unwrap();
        assert!(lint(&arrays, &spec("true", "true")).is_empty());
        // A *scalar* relaxed with `true` is still vacuous.
        let scalar = relaxed_lang::parse_program("relax (x) st (true); y = x;").unwrap();
        assert_eq!(
            codes(&lint(&scalar, &spec("true", "true"))),
            vec![LintCode::VacuousRelax]
        );
    }

    #[test]
    fn lint_flags_inert_invariant_conjuncts() {
        let p = relaxed_lang::parse_program(
            "while (i < n) invariant (i <= n && q == 5) { i = i + 1; }",
        )
        .unwrap();
        let warnings = lint(&p, &spec("true", "true"));
        assert_eq!(codes(&warnings), vec![LintCode::InertInvariant]);
        assert_eq!(warnings[0].site, "loop #1");
        assert!(warnings[0].message.contains("q == 5"));
        // A conjunct over the loop counter is doing work; a constant
        // conjunct (`true`/`false`) has no variables and stays quiet.
        let active =
            relaxed_lang::parse_program("while (i < n) invariant (i <= n && true) { i = i + 1; }")
                .unwrap();
        assert!(lint(&active, &spec("true", "true")).is_empty());
    }

    #[test]
    fn lint_warning_display_is_stable() {
        let w = AnalysisWarning {
            code: LintCode::VacuousRelax,
            site: "relax #1".to_string(),
            message: "predicate never mentions relaxed target x".to_string(),
        };
        assert_eq!(
            w.to_string(),
            "vacuous-relax [relax #1]: predicate never mentions relaxed target x"
        );
    }
}
