//! Static analyses over relaxed programs: array-variable detection and the
//! relaxation-dependence (taint) analysis behind automated noninterference
//! reasoning.

use relaxed_lang::free::{bool_expr_vars, int_expr_vars};
use relaxed_lang::{BoolExpr, Formula, IntExpr, RelFormula, RelIntExpr, Stmt, Var};
use std::collections::BTreeSet;

/// Variables used as arrays (`x[e]` or `len(x)`) anywhere in the statement
/// or its annotations.
///
/// The language is untyped, so "is an array" is a usage property; the VC
/// generator needs it to route `havoc`/`relax`/store targets to the right
/// rule.
pub fn array_vars(s: &Stmt) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    walk_stmt(s, &mut out);
    out
}

/// Array variables used in a unary formula.
pub fn formula_array_vars(p: &Formula) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    walk_formula(p, &mut out);
    out
}

/// Array variables used in a relational formula.
pub fn rel_formula_array_vars(p: &RelFormula) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    walk_rel_formula(p, &mut out);
    out
}

fn walk_int(e: &IntExpr, out: &mut BTreeSet<Var>) {
    match e {
        IntExpr::Const(_) | IntExpr::Var(_) => {}
        IntExpr::Bin(_, lhs, rhs) => {
            walk_int(lhs, out);
            walk_int(rhs, out);
        }
        IntExpr::Select(v, index) => {
            out.insert(v.clone());
            walk_int(index, out);
        }
        IntExpr::Len(v) => {
            out.insert(v.clone());
        }
    }
}

fn walk_bool(b: &BoolExpr, out: &mut BTreeSet<Var>) {
    match b {
        BoolExpr::Const(_) => {}
        BoolExpr::Cmp(_, lhs, rhs) => {
            walk_int(lhs, out);
            walk_int(rhs, out);
        }
        BoolExpr::Bin(_, lhs, rhs) => {
            walk_bool(lhs, out);
            walk_bool(rhs, out);
        }
        BoolExpr::Not(inner) => walk_bool(inner, out),
    }
}

fn walk_formula(p: &Formula, out: &mut BTreeSet<Var>) {
    match p {
        Formula::True | Formula::False => {}
        Formula::Cmp(_, lhs, rhs) => {
            walk_int(lhs, out);
            walk_int(rhs, out);
        }
        Formula::And(l, r) | Formula::Or(l, r) | Formula::Implies(l, r) => {
            walk_formula(l, out);
            walk_formula(r, out);
        }
        Formula::Not(inner) => walk_formula(inner, out),
        Formula::Exists(_, body) | Formula::Forall(_, body) => walk_formula(body, out),
    }
}

fn walk_rel_int(e: &RelIntExpr, out: &mut BTreeSet<Var>) {
    match e {
        RelIntExpr::Const(_) | RelIntExpr::Var(_, _) => {}
        RelIntExpr::Bin(_, lhs, rhs) => {
            walk_rel_int(lhs, out);
            walk_rel_int(rhs, out);
        }
        RelIntExpr::Select(v, _, index) => {
            out.insert(v.clone());
            walk_rel_int(index, out);
        }
        RelIntExpr::Len(v, _) => {
            out.insert(v.clone());
        }
    }
}

fn walk_rel_formula(p: &RelFormula, out: &mut BTreeSet<Var>) {
    match p {
        RelFormula::True | RelFormula::False => {}
        RelFormula::Cmp(_, lhs, rhs) => {
            walk_rel_int(lhs, out);
            walk_rel_int(rhs, out);
        }
        RelFormula::And(l, r) | RelFormula::Or(l, r) | RelFormula::Implies(l, r) => {
            walk_rel_formula(l, out);
            walk_rel_formula(r, out);
        }
        RelFormula::Not(inner) => walk_rel_formula(inner, out),
        RelFormula::Exists(_, _, body) | RelFormula::Forall(_, _, body) => {
            walk_rel_formula(body, out)
        }
    }
}

fn walk_stmt(s: &Stmt, out: &mut BTreeSet<Var>) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(_, e) => walk_int(e, out),
        Stmt::Store(v, index, value) => {
            out.insert(v.clone());
            walk_int(index, out);
            walk_int(value, out);
        }
        Stmt::Havoc(_, b) | Stmt::Relax(_, b) | Stmt::Assume(b) | Stmt::Assert(b) => {
            walk_bool(b, out)
        }
        Stmt::Relate(_, b) => {
            walk_rel_formula(&RelFormula::from_rel_bool_expr(b), out);
        }
        Stmt::If(i) => {
            walk_bool(&i.cond, out);
            if let Some(c) = &i.diverge {
                if let Some(p) = &c.pre_o {
                    walk_formula(p, out);
                }
                if let Some(p) = &c.pre_r {
                    walk_formula(p, out);
                }
                walk_formula(&c.post_o, out);
                walk_formula(&c.post_r, out);
            }
            walk_stmt(&i.then_branch, out);
            walk_stmt(&i.else_branch, out);
        }
        Stmt::While(w) => {
            walk_bool(&w.cond, out);
            if let Some(inv) = &w.invariant {
                walk_formula(inv, out);
            }
            if let Some(rinv) = &w.rel_invariant {
                walk_rel_formula(rinv, out);
            }
            if let Some(c) = &w.diverge {
                if let Some(p) = &c.pre_o {
                    walk_formula(p, out);
                }
                if let Some(p) = &c.pre_r {
                    walk_formula(p, out);
                }
                walk_formula(&c.post_o, out);
                walk_formula(&c.post_r, out);
            }
            walk_stmt(&w.body, out);
        }
        Stmt::Seq(ss) => {
            for s in ss {
                walk_stmt(s, out);
            }
        }
    }
}

/// Computes the set of variables whose *relaxed-execution* values may
/// differ from their original-execution values — the relaxation-dependence
/// ("taint") analysis.
///
/// Seeds: every `relax` target. Propagation: data flow through
/// assignments/stores and control flow through tainted branch/loop
/// conditions (anything assigned under tainted control is tainted, since
/// the two executions may take different paths). `havoc` targets are *not*
/// seeded: the paper's relational havoc picks the values for both
/// executions — but a havoc whose predicate reads tainted variables, or
/// that sits under tainted control flow, taints its targets.
///
/// The complement of the result is the set the automated noninterference
/// invariant `x<o> == x<r>` is sound for; see
/// [`crate::noninterference`].
pub fn relaxation_tainted(s: &Stmt) -> BTreeSet<Var> {
    let mut tainted: BTreeSet<Var> = BTreeSet::new();
    // Iterate to a fixpoint; the program is finite so this terminates.
    loop {
        let before = tainted.len();
        taint_pass(s, false, &mut tainted);
        if tainted.len() == before {
            return tainted;
        }
    }
}

fn expr_tainted(vars: &BTreeSet<Var>, tainted: &BTreeSet<Var>) -> bool {
    vars.iter().any(|v| tainted.contains(v))
}

fn taint_pass(s: &Stmt, under_tainted_control: bool, tainted: &mut BTreeSet<Var>) {
    match s {
        Stmt::Skip | Stmt::Assume(_) | Stmt::Assert(_) | Stmt::Relate(_, _) => {}
        Stmt::Assign(x, e) => {
            if under_tainted_control || expr_tainted(&int_expr_vars(e), tainted) {
                tainted.insert(x.clone());
            }
        }
        Stmt::Store(x, index, value) => {
            let mut vars = int_expr_vars(index);
            vars.extend(int_expr_vars(value));
            if under_tainted_control || expr_tainted(&vars, tainted) {
                tainted.insert(x.clone());
            }
        }
        Stmt::Relax(targets, _) => {
            tainted.extend(targets.iter().cloned());
        }
        Stmt::Havoc(targets, pred) => {
            if under_tainted_control || expr_tainted(&bool_expr_vars(pred), tainted) {
                tainted.extend(targets.iter().cloned());
            }
        }
        Stmt::If(i) => {
            let cond_tainted =
                under_tainted_control || expr_tainted(&bool_expr_vars(&i.cond), tainted);
            taint_pass(&i.then_branch, cond_tainted, tainted);
            taint_pass(&i.else_branch, cond_tainted, tainted);
        }
        Stmt::While(w) => {
            let cond_tainted =
                under_tainted_control || expr_tainted(&bool_expr_vars(&w.cond), tainted);
            taint_pass(&w.body, cond_tainted, tainted);
        }
        Stmt::Seq(ss) => {
            for s in ss {
                taint_pass(s, under_tainted_control, tainted);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxed_lang::parse_stmt;

    fn vars(names: &[&str]) -> BTreeSet<Var> {
        names.iter().map(Var::new).collect()
    }

    #[test]
    fn arrays_detected_from_uses() {
        let s = parse_stmt("x = a[0]; b[1] = x; y = len(d);").unwrap();
        assert_eq!(array_vars(&s), vars(&["a", "b", "d"]));
    }

    #[test]
    fn relax_targets_are_tainted() {
        let s = parse_stmt("relax (x) st (true); y = x + 1; z = w;").unwrap();
        assert_eq!(relaxation_tainted(&s), vars(&["x", "y"]));
    }

    #[test]
    fn control_dependence_taints() {
        let s = parse_stmt(
            "relax (x) st (true);
             if (x > 0) { y = 1; } else { skip; }
             z = 2;",
        )
        .unwrap();
        // y is assigned under a tainted branch; z is not.
        assert_eq!(relaxation_tainted(&s), vars(&["x", "y"]));
    }

    #[test]
    fn taint_reaches_fixpoint_through_loops() {
        // The taint flows x → y on iteration 2 only if the pass iterates.
        let s = parse_stmt(
            "relax (x) st (true);
             while (i < n) { y = c; c = x; i = i + 1; }",
        )
        .unwrap();
        let t = relaxation_tainted(&s);
        assert!(t.contains(&Var::new("c")));
        assert!(
            t.contains(&Var::new("y")),
            "taint must flow through c into y"
        );
        assert!(!t.contains(&Var::new("i")));
    }

    #[test]
    fn havoc_is_untainted_by_default() {
        let s = parse_stmt("havoc (x) st (0 <= x); y = x;").unwrap();
        assert!(relaxation_tainted(&s).is_empty());
    }

    #[test]
    fn havoc_under_tainted_predicate_taints() {
        let s = parse_stmt("relax (t) st (true); havoc (x) st (x > t);").unwrap();
        assert_eq!(relaxation_tainted(&s), vars(&["t", "x"]));
    }

    #[test]
    fn water_kernel_taint_shape() {
        // §5.2: RS is relaxed; K and len_FF stay synchronized; FF is
        // tainted because its store sits under an RS-dependent branch.
        let s = parse_stmt(
            "relax (RS) st (true);
             K = 0;
             while (K < N) {
               if (RS[K] < gCUT2) { FF[K] = RS[K] * 2; } else { skip; }
               K = K + 1;
             }",
        )
        .unwrap();
        let t = relaxation_tainted(&s);
        assert!(t.contains(&Var::new("RS")));
        assert!(t.contains(&Var::new("FF")));
        assert!(!t.contains(&Var::new("K")));
        assert!(!t.contains(&Var::new("N")));
    }
}
