//! The networked verification service: `relaxed-serviced`.
//!
//! The sharded corpus driver ([`crate::shard`]) spawns a fresh worker
//! fleet per run — every corpus pays process startup and a cold verdict
//! cache, and only one coordinator can use the fleet at a time. This
//! module turns the same transport-agnostic framed-JSON protocol into a
//! **long-running service**:
//!
//! * a **daemon** ([`Service`] / [`service_main`], shipped as the
//!   `relaxed-serviced` binary) that pre-spawns a warm `relaxed-shardd`
//!   worker fleet, keeps the fingerprint-gated persistent verdict cache
//!   resident (refreshed through the existing
//!   [`refresh_from_disk`](crate::engine::DischargeEngine::refresh_from_disk)
//!   machinery), and serves **concurrent** verify requests over TCP —
//!   thread-per-connection, with a bounded admission queue and
//!   backpressure (`busy` reject-with-retry-after frames when saturated)
//!   and a graceful drain on the `shutdown` control frame;
//! * a **client** ([`CorpusPolicy::Service`], selected by
//!   `Verifier::builder().service(addr)` or `RELAXED_SERVICE=<host:port>`)
//!   that submits a corpus over one connection, rides out `busy`
//!   backpressure, and receives a merged [`CorpusReport`]
//!   **verdict-identical** to an in-process `check_corpus` run (the
//!   client regenerates VCs locally and zips them with the wire verdicts,
//!   exactly like the shard coordinator).
//!
//! # Wire protocol
//!
//! The worker protocol of [`crate::shard`] plus four service frames:
//!
//! ```text
//! client → daemon               daemon → client
//! ---------------------------   ---------------------------
//! {"type":"config",...}         {"type":"ready","proto":1,"fleet":N}
//!                               {"type":"error","reason":...}   (refused)
//! {"type":"job","id":7,...}     {"type":"result","id":7,...}
//!                               {"type":"busy","id":7,"retry_after_ms":25}
//! {"type":"status"}             {"type":"status","fleet":N,...}
//! {"type":"metrics"}            {"type":"metrics","text":"…Prometheus…"}
//! {"type":"shutdown"}           {"type":"bye","served":S}
//! ```
//!
//! The daemon validates each session's `config` frame against its own
//! fleet configuration: the verdict-relevant knobs (solver budgets and
//! stage selection) must match, so a service answer is always the answer
//! the client's own configuration would have produced. Verdict-neutral
//! knobs (worker counts, cache paths, incremental/prefilter toggles) are
//! the daemon's own business and are not compared.
//!
//! Results may interleave across a connection's pipelined jobs and across
//! connections; every frame carries the job id, and the client collects
//! out-of-order. A worker crash mid-job is retried daemon-side on a
//! freshly spawned replacement (bounded by [`MAX_ATTEMPTS`], exactly like
//! the shard coordinator); a client disconnect mid-job merely discards
//! that job's result write — the worker is returned to the fleet and the
//! admission slot is released, so one flaky client can never wedge the
//! fleet.
//!
//! [`CorpusPolicy::Service`]: crate::api::CorpusPolicy::Service
//! [`CorpusReport`]: crate::api::CorpusReport
//! [`MAX_ATTEMPTS`]: crate::shard::MAX_ATTEMPTS

use crate::api::{elapsed_ms_since, Config, CorpusEntry, CorpusError, CorpusReport, Verifier};
use crate::cache::{parse_json, Json};
use crate::shard::{
    field_str, field_u64, merge_batch_entries, parse_config_frame, parse_result_frame,
    prepare_jobs, rebuild_report, render_config_frame, render_error_frame, resolve_worker,
    ShardJob, TcpTransport, Transport, WorkerHandle, MAX_ATTEMPTS, PROTOCOL_VERSION,
    SERVICE_BINARY,
};
use crate::verify::Spec;
use relaxed_lang::Program;
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Startup options for a [`Service`] daemon.
#[derive(Clone, Debug)]
pub struct ServiceOptions {
    /// Listen address. Port `0` binds an ephemeral port (read it back
    /// from [`Service::local_addr`]; the binary prints it on startup).
    pub addr: String,
    /// Warm worker fleet size; `0` sizes it to the config's effective
    /// parallelism. Settable via `RELAXED_SERVICE_FLEET` for the binary.
    pub fleet: usize,
    /// Admission cap: jobs admitted (running + waiting for a worker)
    /// across all connections before the daemon answers `busy`. `0`
    /// means `4 × fleet`. Settable via `RELAXED_SERVICE_QUEUE` for the
    /// binary.
    pub queue: usize,
    /// The `retry_after_ms` hint sent with `busy` rejections.
    pub retry_after_ms: u64,
    /// The verification session configuration the fleet runs under
    /// (solver budgets, stages, the resident persistent cache path, the
    /// worker-binary override). The binary takes it from the
    /// `DISCHARGE_*` environment.
    pub config: Config,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            addr: "127.0.0.1:0".to_string(),
            fleet: 0,
            queue: 0,
            retry_after_ms: 25,
            config: Config::default(),
        }
    }
}

/// Mutable daemon state behind one lock: the idle fleet, the admission
/// counter, and the live-worker count (all condvar-signalled together).
struct DaemonState {
    idle: Vec<WorkerHandle>,
    /// Workers that exist at all (idle + checked out). Shrinks only when
    /// a replacement spawn fails; `0` fails new checkouts instead of
    /// deadlocking them.
    alive: usize,
    /// Jobs admitted and not yet finished, across all connections.
    active: usize,
    /// High-water mark of `active` — the queue-depth gauge.
    peak_active: usize,
}

struct Daemon {
    config: Config,
    config_frame: String,
    binary: PathBuf,
    fleet_size: usize,
    queue_cap: usize,
    retry_after_ms: u64,
    state: Mutex<DaemonState>,
    signal: Condvar,
    served: AtomicU64,
    rejected: AtomicU64,
    draining: AtomicBool,
    /// Session-resident metrics, served as Prometheus text over the
    /// `metrics` control frame: request counters, queue/fleet gauges
    /// (set at scrape time), and the request-latency histogram.
    metrics: crate::telemetry::MetricsRegistry,
    /// The resident session: holds the persistent verdict cache warm in
    /// daemon memory (loaded at startup, refreshed after every job) so
    /// status introspection and post-drain persistence never wait on a
    /// cold load.
    resident: Verifier,
}

impl Daemon {
    /// Admits one job if below the cap. `true` = admitted (the caller
    /// must later call [`Daemon::release`]).
    fn admit(&self) -> bool {
        let mut state = self.state.lock().expect("service state");
        if state.active >= self.queue_cap {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .counter_add("relaxed_requests_rejected_total", 1);
            return false;
        }
        state.active += 1;
        state.peak_active = state.peak_active.max(state.active);
        true
    }

    fn release(&self) {
        let mut state = self.state.lock().expect("service state");
        state.active -= 1;
        drop(state);
        self.signal.notify_all();
    }

    /// Checks a worker out of the idle fleet, waiting while all workers
    /// are busy elsewhere. Fails only when the whole fleet is dead.
    fn checkout(&self) -> Result<WorkerHandle, String> {
        // The admission-queue wait: how long an admitted job sat between
        // its `admit` and a worker becoming free.
        let mut wait_span = crate::telemetry::span("service", "admit_wait");
        let mut state = self.state.lock().expect("service state");
        loop {
            if let Some(worker) = state.idle.pop() {
                if wait_span.is_active() {
                    wait_span.arg("worker", worker.lane);
                }
                return Ok(worker);
            }
            if state.alive == 0 {
                return Err("no live workers in the fleet".to_string());
            }
            state = self.signal.wait(state).expect("service state");
        }
    }

    fn checkin(&self, worker: WorkerHandle) {
        let mut state = self.state.lock().expect("service state");
        state.idle.push(worker);
        drop(state);
        self.signal.notify_all();
    }

    /// Replaces a killed worker with a freshly spawned one, shrinking the
    /// fleet (loudly) when the spawn fails.
    fn respawn(&self) {
        match WorkerHandle::spawn(&self.binary, &self.config_frame, self.config.ready_timeout) {
            Ok(worker) => self.checkin(worker),
            Err(e) => {
                let mut state = self.state.lock().expect("service state");
                state.alive -= 1;
                let alive = state.alive;
                drop(state);
                self.signal.notify_all();
                crate::diag::warn(format_args!(
                    "{SERVICE_BINARY}: failed to respawn a fleet worker ({alive} left): {e}"
                ));
            }
        }
    }

    /// Runs one raw job line on the fleet with bounded retries, returning
    /// the raw response line to forward (a result frame, or an error
    /// frame when the attempts are exhausted).
    fn run_job_line(&self, id: usize, line: &str) -> String {
        let job_started = Instant::now();
        let mut attempts = 0u32;
        let mut last_error = String::new();
        while attempts < MAX_ATTEMPTS {
            let mut worker = match self.checkout() {
                Ok(worker) => worker,
                Err(e) => return render_error_frame(id, &e),
            };
            attempts += 1;
            match relay_job(&mut worker, id, line, self.config.job_timeout) {
                Ok(response) => {
                    self.checkin(worker);
                    self.served.fetch_add(1, Ordering::Relaxed);
                    self.metrics.counter_add("relaxed_requests_served_total", 1);
                    self.metrics
                        .observe_ms("relaxed_request_latency_ms", elapsed_ms_since(job_started));
                    // Keep the resident cache warm with whatever verdicts
                    // the worker just appended to the shared store.
                    self.resident.engine().refresh_from_disk();
                    return response;
                }
                Err(e) => {
                    // The channel is desynchronized: kill this worker and
                    // retry on a freshly spawned replacement, exactly like
                    // the shard coordinator.
                    last_error = e;
                    worker.kill();
                    self.respawn();
                }
            }
        }
        render_error_frame(
            id,
            &format!("job failed after {attempts} attempts; last error: {last_error}"),
        )
    }

    fn status_frame(&self) -> String {
        let state = self.state.lock().expect("service state");
        format!(
            "{{\"type\":\"status\",\"proto\":{PROTOCOL_VERSION},\"fleet\":{},\"alive\":{},\
             \"active\":{},\"peak_active\":{},\"served\":{},\"rejected\":{},\
             \"resident_loaded\":{}}}",
            self.fleet_size,
            state.alive,
            state.active,
            state.peak_active,
            self.served.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.resident.stats().loaded,
        )
    }

    /// The `metrics` control frame: queue/fleet gauges stamped at scrape
    /// time, then the registry as Prometheus text inside one JSON frame.
    fn metrics_frame(&self) -> String {
        {
            let state = self.state.lock().expect("service state");
            self.metrics
                .gauge_set("relaxed_queue_depth", state.active as i64);
            self.metrics
                .gauge_set("relaxed_queue_depth_peak", state.peak_active as i64);
            self.metrics.gauge_set(
                "relaxed_fleet_busy",
                state.alive.saturating_sub(state.idle.len()) as i64,
            );
            self.metrics
                .gauge_set("relaxed_fleet_alive", state.alive as i64);
        }
        format!(
            "{{\"type\":\"metrics\",\"proto\":{PROTOCOL_VERSION},\"text\":{}}}",
            crate::cache::json_string(&self.metrics.render_prometheus())
        )
    }

    /// The graceful drain: stop admitting, wait out the in-flight jobs,
    /// shut the fleet down (each worker's EOF triggers its final
    /// persist), and refresh the resident cache one last time.
    fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        let mut state = self.state.lock().expect("service state");
        while state.active > 0 {
            state = self.signal.wait(state).expect("service state");
        }
        for worker in state.idle.drain(..) {
            worker.shutdown();
        }
        state.alive = 0;
        drop(state);
        self.signal.notify_all();
        self.resident.engine().refresh_from_disk();
    }
}

/// Sends one raw job line to a worker and reads back its (id-validated)
/// response line.
fn relay_job(
    worker: &mut WorkerHandle,
    id: usize,
    line: &str,
    job_timeout: Duration,
) -> Result<String, String> {
    worker.send(line)?;
    let response = worker.recv(job_timeout)?;
    let wire = parse_result_frame(&response).map_err(|e| format!("malformed result frame: {e}"))?;
    if wire.id != id {
        return Err(format!(
            "result frame for job {} while awaiting job {id}",
            wire.id
        ));
    }
    Ok(response)
}

/// A bound-but-not-yet-running service daemon: the listener exists (so
/// [`Service::local_addr`] is real even for port `0`) and the fleet is
/// warm; [`Service::run`] serves until a `shutdown` frame drains it.
pub struct Service {
    daemon: Arc<Daemon>,
    listener: TcpListener,
}

impl Service {
    /// Binds the listen socket and pre-spawns the warm worker fleet.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound, the worker binary cannot
    /// be resolved (the error lists the searched paths), or not a single
    /// fleet worker could be spawned.
    pub fn bind(options: ServiceOptions) -> Result<Service, String> {
        let listener = TcpListener::bind(&options.addr)
            .map_err(|e| format!("cannot bind {}: {e}", options.addr))?;
        let config = options.config;
        let binary = resolve_worker(&config)?;
        let fleet_size = if options.fleet == 0 {
            config.discharge_config().effective_parallelism()
        } else {
            options.fleet
        };
        let per_worker = (config.discharge_config().effective_parallelism() / fleet_size).max(1);
        let config_frame = render_config_frame(&config, per_worker);
        let mut idle = Vec::with_capacity(fleet_size);
        for _ in 0..fleet_size {
            match WorkerHandle::spawn(&binary, &config_frame, config.ready_timeout) {
                Ok(worker) => idle.push(worker),
                Err(e) => {
                    for worker in idle.drain(..) {
                        worker.kill();
                    }
                    return Err(format!("failed to pre-spawn the worker fleet: {e}"));
                }
            }
        }
        let queue_cap = if options.queue == 0 {
            fleet_size * 4
        } else {
            options.queue
        };
        // The resident session loads the persistent store (if configured)
        // into daemon memory up front.
        let resident = Verifier::with_config(config.clone());
        let daemon = Arc::new(Daemon {
            config_frame,
            binary,
            fleet_size,
            queue_cap,
            retry_after_ms: options.retry_after_ms,
            state: Mutex::new(DaemonState {
                alive: idle.len(),
                idle,
                active: 0,
                peak_active: 0,
            }),
            signal: Condvar::new(),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            metrics: crate::telemetry::MetricsRegistry::new(),
            resident,
            config,
        });
        Ok(Service { daemon, listener })
    }

    /// The actually bound listen address (resolves port `0`).
    pub fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_string())
    }

    /// The warm fleet size.
    pub fn fleet(&self) -> usize {
        self.daemon.fleet_size
    }

    /// Verdicts the resident cache loaded from the persistent store at
    /// startup.
    pub fn resident_loaded(&self) -> u64 {
        self.daemon.resident.stats().loaded
    }

    /// Serves connections until a `shutdown` frame arrives and the drain
    /// completes. Returns the total job count served.
    pub fn run(self) -> u64 {
        let local = self.local_addr();
        for stream in self.listener.incoming() {
            if self.daemon.draining.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let daemon = Arc::clone(&self.daemon);
            let local = local.clone();
            std::thread::spawn(move || handle_connection(&daemon, stream, &local));
        }
        self.daemon.served.load(Ordering::Relaxed)
    }
}

/// One client connection: reads frames until EOF (a vanished client) or
/// the daemon-wide shutdown. Jobs fan out onto detached threads so one
/// connection's pipelined corpus saturates the whole fleet.
fn handle_connection(daemon: &Arc<Daemon>, stream: TcpStream, local_addr: &str) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<client>".to_string());
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let mut reader = TcpTransport::from_stream(stream, peer);
    // The server side has no frame deadline of its own: an idle client
    // costs one parked thread, and EOF/shutdown are the exits.
    const READ_SLICE: Duration = Duration::from_millis(500);
    let mut configured = false;
    loop {
        let line = match reader.recv_opt(READ_SLICE) {
            Ok(Some(line)) => line,
            Ok(None) => {
                if daemon.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return, // client hung up (mid-job is fine — see below)
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply = |frame: &str| {
            let mut w = writer.lock().expect("connection writer");
            use std::io::Write;
            let _ = w
                .write_all(frame.as_bytes())
                .and_then(|()| w.write_all(b"\n"));
        };
        let Ok(record) = parse_json(&line) else {
            reply("{\"type\":\"error\",\"reason\":\"malformed frame\"}");
            return;
        };
        let Ok(fields) = record.as_object() else {
            reply("{\"type\":\"error\",\"reason\":\"malformed frame\"}");
            return;
        };
        match field_str(fields, "type") {
            Ok("config") => match validate_session(&daemon.config, fields) {
                Ok(()) => {
                    configured = true;
                    reply(&format!(
                        "{{\"type\":\"ready\",\"proto\":{PROTOCOL_VERSION},\"fleet\":{}}}",
                        daemon.fleet_size
                    ));
                }
                Err(reason) => {
                    reply(&format!(
                        "{{\"type\":\"error\",\"reason\":{}}}",
                        crate::cache::json_string(&reason)
                    ));
                    return;
                }
            },
            Ok("job") => {
                let id = field_u64(fields, "id").unwrap_or(0) as usize;
                if !configured {
                    reply(&render_error_frame(id, "job before config"));
                    continue;
                }
                if daemon.draining.load(Ordering::SeqCst) {
                    reply(&render_error_frame(id, "service is shutting down"));
                    continue;
                }
                if !daemon.admit() {
                    reply(&format!(
                        "{{\"type\":\"busy\",\"id\":{id},\"retry_after_ms\":{}}}",
                        daemon.retry_after_ms
                    ));
                    continue;
                }
                let daemon = Arc::clone(daemon);
                let writer = Arc::clone(&writer);
                std::thread::spawn(move || {
                    let response = daemon.run_job_line(id, &line);
                    // A vanished client makes this write fail; the job
                    // slot and the worker are released either way, so the
                    // fleet never wedges on a dropped connection.
                    {
                        let mut w = writer.lock().expect("connection writer");
                        use std::io::Write;
                        let _ = w
                            .write_all(response.as_bytes())
                            .and_then(|()| w.write_all(b"\n"));
                    }
                    daemon.release();
                    // Detached job threads may outlive a trace write:
                    // flush this thread's spans while the job is hot.
                    crate::telemetry::drain_thread();
                });
            }
            Ok("status") => reply(&daemon.status_frame()),
            Ok("metrics") => reply(&daemon.metrics_frame()),
            Ok("shutdown") => {
                daemon.drain();
                reply(&format!(
                    "{{\"type\":\"bye\",\"served\":{}}}",
                    daemon.served.load(Ordering::Relaxed)
                ));
                // Wake the accept loop so Service::run observes the drain.
                let _ = TcpStream::connect(local_addr);
                return;
            }
            _ => {
                reply("{\"type\":\"error\",\"reason\":\"unknown frame type\"}");
                return;
            }
        }
    }
}

/// Validates a client session's `config` frame against the fleet's
/// configuration: the verdict-relevant knobs (solver budgets, stage
/// selection) must match exactly; verdict-neutral knobs (workers, cache
/// scoping, incremental/prefilter) are the daemon's own business.
fn validate_session(fleet: &Config, fields: &[(String, Json)]) -> Result<(), String> {
    let client = parse_config_frame(fields)?;
    if client.max_conflicts != fleet.max_conflicts || client.branch_budget != fleet.branch_budget {
        return Err(format!(
            "solver budget mismatch: client max_conflicts={}/branch_budget={}, \
             fleet max_conflicts={}/branch_budget={}",
            client.max_conflicts, client.branch_budget, fleet.max_conflicts, fleet.branch_budget
        ));
    }
    if client.stages != fleet.stages {
        return Err("stage selection mismatch between client and fleet".to_string());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The client
// ---------------------------------------------------------------------

/// Runs a corpus through a `relaxed-serviced` daemon — the implementation
/// behind [`CorpusPolicy::Service`](crate::api::CorpusPolicy::Service).
/// See the [module docs](self) for the architecture.
pub(crate) fn run_corpus_service(
    verifier: &Verifier,
    entries: Vec<(String, &Program, &Spec)>,
    addr: &str,
) -> CorpusReport {
    let started = Instant::now();
    let config = verifier.config();
    let count = entries.len();
    let mut report = CorpusReport {
        stages: config.stages,
        ..CorpusReport::default()
    };
    let mut slots: Vec<Option<CorpusEntry>> = (0..count).map(|_| None).collect();
    let jobs = prepare_jobs(
        config.stages,
        &entries,
        &mut slots,
        config.goal_shards,
        &verifier.cost_snapshot(),
    );
    let fleet = if jobs.is_empty() {
        1
    } else {
        run_jobs_over_service(config, addr, jobs, &mut slots)
    };
    crate::shard::finalize_corpus_report(&mut report, slots, &entries, &|_| {
        CorpusError::Service("job was lost by the client".to_string())
    });
    // Corpus-level parallelism is the daemon's fleet.
    report.engine.workers = fleet;
    report.elapsed_ms = elapsed_ms_since(started);
    // Warm the client's own session cache from the store the fleet
    // populated (a no-op unless both share a persistent path).
    verifier.engine().refresh_from_disk();
    report
}

/// Submits the prepared jobs over one connection and fills `slots`;
/// failures (unreachable daemon, dead connection, saturation past the
/// patience window) become per-program [`CorpusError::Service`] entries.
/// Returns the daemon's advertised fleet size.
fn run_jobs_over_service(
    config: &Config,
    addr: &str,
    jobs: Vec<ShardJob>,
    slots: &mut [Option<CorpusEntry>],
) -> usize {
    // Results (and per-job failures) accumulate as batch partials; the
    // merge resolves each program's batches into one entry — a failed
    // batch fails its program, exactly like the shard coordinator.
    let mut done: Vec<(usize, usize, CorpusEntry)> = Vec::new();
    let fleet = drive_service_jobs(config, addr, jobs, &mut done);
    let mut parts: HashMap<usize, Vec<(usize, CorpusEntry)>> = HashMap::new();
    for (slot, batch, entry) in done {
        parts.entry(slot).or_default().push((batch, entry));
    }
    for (slot, list) in parts {
        slots[slot] = Some(merge_batch_entries(list));
    }
    fleet
}

/// The connection-driving half of [`run_jobs_over_service`]: pipelines
/// the jobs, rides out `busy` backpressure, and pushes one completed (or
/// failed) partial per job into `done`.
fn drive_service_jobs(
    config: &Config,
    addr: &str,
    jobs: Vec<ShardJob>,
    done: &mut Vec<(usize, usize, CorpusEntry)>,
) -> usize {
    let fail_all =
        |done: &mut Vec<(usize, usize, CorpusEntry)>, pending: Vec<ShardJob>, reason: &str| {
            for job in pending {
                done.push((
                    job.slot,
                    job.batch,
                    CorpusEntry {
                        name: job.name,
                        elapsed_ms: 0,
                        lint: Vec::new(),
                        outcome: Err(CorpusError::Service(reason.to_string())),
                    },
                ));
            }
        };
    let config_frame = render_config_frame(config, config.workers);
    let mut handle = match WorkerHandle::connect(addr, &config_frame, config.ready_timeout) {
        Ok(handle) => handle,
        Err(e) => {
            let reason = format!("cannot reach the service at {addr}: {e}");
            fail_all(done, jobs, &reason);
            return 1;
        }
    };
    let fleet = handle.fleet.unwrap_or(1);

    // Pipeline every job up front (the list is already longest-first);
    // the daemon interleaves results and answers `busy` past its
    // admission cap.
    let mut pending: HashMap<usize, ShardJob> = HashMap::with_capacity(jobs.len());
    for job in jobs {
        if let Err(e) = handle.send(&job.frame) {
            let mut lost: Vec<ShardJob> = pending.into_values().collect();
            lost.push(job);
            fail_all(done, lost, &format!("connection to {addr} failed: {e}"));
            return fleet;
        }
        pending.insert(job.id, job);
    }

    // Collect out-of-order results, riding out `busy` backpressure. The
    // patience window is *progress-based*: any frame from the daemon
    // (result or busy) resets it, so a large pipelined corpus is never
    // timed out merely for being longer than one job's budget.
    let mut retries: Vec<(Instant, usize)> = Vec::new();
    let mut busy_since: HashMap<usize, Instant> = HashMap::new();
    let mut last_progress = Instant::now();
    while !pending.is_empty() {
        let now = Instant::now();
        let mut i = 0;
        while i < retries.len() {
            if retries[i].0 <= now {
                let (_, id) = retries.swap_remove(i);
                if let Some(job) = pending.get(&id) {
                    if let Err(e) = handle.send(&job.frame) {
                        let lost: Vec<ShardJob> = pending.into_values().collect();
                        fail_all(done, lost, &format!("connection to {addr} failed: {e}"));
                        return fleet;
                    }
                }
            } else {
                i += 1;
            }
        }
        let window = config
            .job_timeout
            .saturating_sub(now.duration_since(last_progress));
        if window.is_zero() {
            let lost: Vec<ShardJob> = pending.into_values().collect();
            fail_all(
                done,
                lost,
                &format!(
                    "service at {addr} made no progress for {}s",
                    config.job_timeout.as_secs()
                ),
            );
            return fleet;
        }
        let mut wait = window;
        if let Some(next) = retries.iter().map(|(due, _)| *due).min() {
            let until = next
                .saturating_duration_since(now)
                .max(Duration::from_millis(1));
            wait = wait.min(until);
        }
        let line = match handle.recv_opt(wait) {
            Ok(Some(line)) => line,
            Ok(None) => continue, // a retry came due or the window shrank
            Err(e) => {
                let lost: Vec<ShardJob> = pending.into_values().collect();
                fail_all(done, lost, &format!("connection to {addr} failed: {e}"));
                return fleet;
            }
        };
        last_progress = Instant::now();
        let kind = parse_json(&line)
            .and_then(|record| {
                record.as_object().and_then(|fields| {
                    Ok((
                        field_str(fields, "type")?.to_string(),
                        field_u64(fields, "id")?,
                    ))
                })
            })
            .map_err(|e| format!("malformed frame from {addr}: {e}"));
        let (kind, id) = match kind {
            Ok(parsed) => parsed,
            Err(reason) => {
                let lost: Vec<ShardJob> = pending.into_values().collect();
                fail_all(done, lost, &reason);
                return fleet;
            }
        };
        let id = id as usize;
        match kind.as_str() {
            "result" => {
                let Some(job) = pending.remove(&id) else {
                    continue; // duplicate/stale result; ignore
                };
                busy_since.remove(&id);
                done.push((job.slot, job.batch, entry_from_result(&job, &line)));
            }
            "busy" => {
                // Saturation backpressure: honor the daemon's
                // retry-after hint, but give up on a job the daemon has
                // refused for a whole patience window.
                let first = *busy_since.entry(id).or_insert_with(Instant::now);
                if first.elapsed() >= config.job_timeout {
                    if let Some(job) = pending.remove(&id) {
                        done.push((
                            job.slot,
                            job.batch,
                            CorpusEntry {
                                name: job.name,
                                elapsed_ms: 0,
                                lint: Vec::new(),
                                outcome: Err(CorpusError::Service(format!(
                                    "service at {addr} stayed saturated for {}s",
                                    config.job_timeout.as_secs()
                                ))),
                            },
                        ));
                    }
                    continue;
                }
                let after = field_u64(
                    parse_json(&line)
                        .expect("frame parsed above")
                        .as_object()
                        .expect("object parsed above"),
                    "retry_after_ms",
                )
                .unwrap_or(25);
                retries.push((Instant::now() + Duration::from_millis(after), id));
            }
            other => {
                let lost: Vec<ShardJob> = pending.into_values().collect();
                fail_all(
                    done,
                    lost,
                    &format!("unexpected frame type {other:?} from {addr}"),
                );
                return fleet;
            }
        }
    }
    handle.shutdown();
    fleet
}

/// Rebuilds one [`CorpusEntry`] from a raw result line, zipping the wire
/// verdicts with the locally generated obligations (identical to the
/// shard coordinator's merge).
fn entry_from_result(job: &ShardJob, line: &str) -> CorpusEntry {
    let fallible = || -> Result<CorpusEntry, String> {
        let wire = parse_result_frame(line)?;
        if let Some(error) = wire.error {
            return Ok(CorpusEntry {
                name: job.name.clone(),
                elapsed_ms: wire.elapsed_ms,
                lint: Vec::new(),
                outcome: Err(CorpusError::Service(format!("service reported: {error}"))),
            });
        }
        let report = rebuild_report(job, wire.stages, wire.engine)?;
        Ok(CorpusEntry {
            name: job.name.clone(),
            elapsed_ms: wire.elapsed_ms,
            lint: Vec::new(),
            outcome: Ok(report),
        })
    };
    fallible().unwrap_or_else(|reason| CorpusEntry {
        name: job.name.clone(),
        elapsed_ms: 0,
        lint: Vec::new(),
        outcome: Err(CorpusError::Service(format!(
            "malformed service result: {reason}"
        ))),
    })
}

// ---------------------------------------------------------------------
// Control-plane helpers (status / shutdown)
// ---------------------------------------------------------------------

/// A `status` frame's counters, for benches, CI gates, and operators.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStatus {
    /// Configured warm fleet size.
    pub fleet: u64,
    /// Workers currently alive (shrinks only on respawn failures).
    pub alive: u64,
    /// Jobs admitted and in flight right now.
    pub active: u64,
    /// High-water mark of `active` — the queue-depth gauge.
    pub peak_active: u64,
    /// Jobs served since startup.
    pub served: u64,
    /// Jobs rejected with `busy` since startup.
    pub rejected: u64,
    /// Verdicts the resident cache holds from the persistent store.
    pub resident_loaded: u64,
}

fn control_frame(addr: &str, frame: &str, timeout: Duration) -> Result<String, String> {
    let mut transport = TcpTransport::connect(addr, timeout)?;
    transport.send(frame)?;
    match transport.recv_opt(timeout)? {
        Some(line) => Ok(line),
        None => Err(format!(
            "no reply from {addr} within {}s",
            timeout.as_secs()
        )),
    }
}

/// Queries a running daemon's [`ServiceStatus`].
///
/// # Errors
///
/// Fails when the daemon is unreachable or replies with something other
/// than a status frame.
pub fn service_status(addr: &str, timeout: Duration) -> Result<ServiceStatus, String> {
    let line = control_frame(addr, "{\"type\":\"status\"}", timeout)?;
    let record = parse_json(&line).map_err(|e| format!("bad status frame: {e}"))?;
    let fields = record
        .as_object()
        .map_err(|e| format!("bad status frame: {e}"))?;
    if field_str(fields, "type") != Ok("status") {
        return Err(format!("expected a status frame, got {line:?}"));
    }
    Ok(ServiceStatus {
        fleet: field_u64(fields, "fleet")?,
        alive: field_u64(fields, "alive")?,
        active: field_u64(fields, "active")?,
        peak_active: field_u64(fields, "peak_active")?,
        served: field_u64(fields, "served")?,
        rejected: field_u64(fields, "rejected")?,
        resident_loaded: field_u64(fields, "resident_loaded")?,
    })
}

/// Fetches a running daemon's metrics as Prometheus text exposition
/// (the payload of its `metrics` control frame): request counters,
/// queue-depth / fleet-busy gauges, and the fixed-bucket request-latency
/// histogram.
///
/// # Errors
///
/// Fails when the daemon is unreachable or replies with something other
/// than a metrics frame.
pub fn service_metrics(addr: &str, timeout: Duration) -> Result<String, String> {
    let line = control_frame(addr, "{\"type\":\"metrics\"}", timeout)?;
    let record = parse_json(&line).map_err(|e| format!("bad metrics frame: {e}"))?;
    let fields = record
        .as_object()
        .map_err(|e| format!("bad metrics frame: {e}"))?;
    if field_str(fields, "type") != Ok("metrics") {
        return Err(format!("expected a metrics frame, got {line:?}"));
    }
    field_str(fields, "text").map(ToString::to_string)
}

/// Asks a running daemon to drain and exit gracefully (in-flight jobs
/// finish, the fleet persists its verdicts, then the daemon stops
/// accepting). Returns the total jobs served over the daemon's lifetime.
///
/// # Errors
///
/// Fails when the daemon is unreachable or the drain outlasts `timeout`.
pub fn shutdown_service(addr: &str, timeout: Duration) -> Result<u64, String> {
    let line = control_frame(addr, "{\"type\":\"shutdown\"}", timeout)?;
    let record = parse_json(&line).map_err(|e| format!("bad bye frame: {e}"))?;
    let fields = record
        .as_object()
        .map_err(|e| format!("bad bye frame: {e}"))?;
    if field_str(fields, "type") != Ok("bye") {
        return Err(format!("expected a bye frame, got {line:?}"));
    }
    field_u64(fields, "served")
}

// ---------------------------------------------------------------------
// The binary entry point
// ---------------------------------------------------------------------

// Bin-only helper: stderr here is `relaxed-serviced`'s own surface.
#[allow(clippy::print_stderr)]
fn env_usize(var: &str) -> Option<usize> {
    let raw = std::env::var(var).ok()?;
    match raw.trim().parse() {
        Ok(value) => Some(value),
        Err(_) => {
            eprintln!("{SERVICE_BINARY}: ignoring {var}={raw:?}: expected an unsigned integer");
            None
        }
    }
}

/// The `relaxed-serviced` entry point: options from the command line
/// (`--addr`, `--fleet`, `--queue`) and the environment
/// (`DISCHARGE_*` for the session config, `RELAXED_SERVICE_FLEET` /
/// `RELAXED_SERVICE_QUEUE` as flag fallbacks), then serve until a
/// `shutdown` frame drains the daemon.
// Bin entry point: stdout/stderr are the process's own surface.
#[allow(clippy::print_stderr)]
pub fn service_main() -> std::process::ExitCode {
    let mut options = ServiceOptions::default();
    let (config, warnings) = Config::from_env();
    for warning in &warnings {
        eprintln!("{SERVICE_BINARY}: {warning}");
    }
    options.config = config;
    if let Some(fleet) = env_usize("RELAXED_SERVICE_FLEET") {
        options.fleet = fleet;
    }
    if let Some(queue) = env_usize("RELAXED_SERVICE_QUEUE") {
        options.queue = queue;
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag = |name: &str| -> Option<String> {
            if arg == name {
                let value = args.next();
                if value.is_none() {
                    eprintln!("{SERVICE_BINARY}: {name} needs a value");
                }
                value
            } else {
                None
            }
        };
        if let Some(addr) = flag("--addr") {
            options.addr = addr;
        } else if let Some(fleet) = flag("--fleet") {
            match fleet.parse() {
                Ok(fleet) => options.fleet = fleet,
                Err(_) => eprintln!("{SERVICE_BINARY}: --fleet needs an unsigned integer"),
            }
        } else if let Some(queue) = flag("--queue") {
            match queue.parse() {
                Ok(queue) => options.queue = queue,
                Err(_) => eprintln!("{SERVICE_BINARY}: --queue needs an unsigned integer"),
            }
        } else {
            eprintln!(
                "{SERVICE_BINARY}: unknown argument {arg:?} \
                 (usage: {SERVICE_BINARY} [--addr host:port] [--fleet n] [--queue n])"
            );
            return std::process::ExitCode::FAILURE;
        }
    }
    let service = match Service::bind(options) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("{SERVICE_BINARY}: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    // The machine-readable startup line: tests, CI, and xtask parse the
    // bound address (and fleet size) out of it. Writes after this point
    // must tolerate a closed pipe — a supervisor may read the startup
    // line and then drop our stdout without that being our problem.
    use std::io::Write;
    let mut stdout = std::io::stdout();
    let _ = writeln!(
        stdout,
        "{SERVICE_BINARY}: listening on {} fleet={} resident_loaded={}",
        service.local_addr(),
        service.fleet(),
        service.resident_loaded()
    );
    let _ = stdout.flush();
    let served = service.run();
    let _ = writeln!(
        stdout,
        "{SERVICE_BINARY}: drained after serving {served} jobs"
    );
    std::process::ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_bind_ephemeral_localhost() {
        let options = ServiceOptions::default();
        assert_eq!(options.addr, "127.0.0.1:0");
        assert_eq!(options.fleet, 0);
        assert_eq!(options.queue, 0);
    }

    #[test]
    fn session_validation_accepts_matching_and_refuses_mismatched_budgets() {
        let fleet = Config::default();
        let frame = render_config_frame(&fleet, 1);
        let record = parse_json(&frame).unwrap();
        assert!(validate_session(&fleet, record.as_object().unwrap()).is_ok());

        let mismatched = Config {
            max_conflicts: fleet.max_conflicts + 1,
            ..Config::default()
        };
        let frame = render_config_frame(&mismatched, 1);
        let record = parse_json(&frame).unwrap();
        let err = validate_session(&fleet, record.as_object().unwrap()).unwrap_err();
        assert!(err.contains("budget mismatch"), "{err}");

        let restaged = Config {
            stages: crate::api::StageSet::only(crate::api::Stage::Original),
            ..Config::default()
        };
        let frame = render_config_frame(&restaged, 1);
        let record = parse_json(&frame).unwrap();
        let err = validate_session(&fleet, record.as_object().unwrap()).unwrap_err();
        assert!(err.contains("stage selection"), "{err}");
    }

    #[test]
    fn session_validation_ignores_verdict_neutral_knobs() {
        let fleet = Config::default();
        let client = Config {
            workers: 7,
            incremental: false,
            prefilter: false,
            cache: crate::api::CachePolicy::Persistent {
                path: std::path::PathBuf::from("/elsewhere/verdicts.jsonl"),
            },
            ..Config::default()
        };
        let frame = render_config_frame(&client, 3);
        let record = parse_json(&frame).unwrap();
        assert!(validate_session(&fleet, record.as_object().unwrap()).is_ok());
    }

    #[test]
    fn unreachable_service_yields_per_program_errors_not_hangs() {
        use relaxed_lang::parse_program;
        let program = parse_program(
            "x0 = x;
             relax (x) st (x0 <= x && x <= x0 + 2);
             relate l1 : x<o> <= x<r> && x<r> - x<o> <= 2;",
        )
        .unwrap();
        let mut spec = Spec::synced(&program);
        spec.rel_pre = relaxed_lang::parse_rel_formula("x<o> == x<r>").unwrap();
        // A bound-then-dropped listener guarantees a refused port.
        let refused = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let verifier = Verifier::builder()
            .service(&refused)
            .ready_timeout(Duration::from_secs(2))
            .workers(1)
            .build();
        let report = verifier.check_corpus(&[(program, spec)]);
        assert_eq!(report.len(), 1);
        let err = report.entries[0].outcome.as_ref().unwrap_err();
        assert!(matches!(err, CorpusError::Service(_)), "{err}");
        assert!(err.to_string().contains("cannot reach"), "{err}");
    }

    #[test]
    fn empty_service_corpus_never_touches_the_network() {
        let verifier = Verifier::builder().service("127.0.0.1:1").build();
        let report = verifier.check_corpus(&[]);
        assert!(report.is_empty());
        assert!(report.verified());
    }
}
