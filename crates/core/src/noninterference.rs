//! Automated noninterference reasoning (§1.4, §5.2 of the paper).
//!
//! "Relational assertions that establish the equality of values of
//! variables in the original and relaxed executions (i.e.,
//! noninterference) often form the bridge" that transfers reasoning from
//! the original program to the relaxed program. This module makes the
//! bridge automatic:
//!
//! * [`sync_invariant`] — the conjunction `⋀ v<o> == v<r>` over every
//!   variable the taint analysis proves *unaffected* by relaxation;
//! * [`initial_sync`] — the same over *all* variables, the canonical
//!   relational precondition "both executions start from the same state";
//! * [`augment_rel_invariants`] — fills every missing `rinvariant` with
//!   `⟨I · I⟩ ∧ sync(untainted)`, turning a program annotated only for the
//!   original semantics into one the relational generator can process.

use crate::analysis::{array_vars, relaxation_tainted};
use crate::vcgen::sync_vars;
use crate::verify::Spec;
use relaxed_lang::free::rel_formula_var_names;
use relaxed_lang::{Formula, Program, RelFormula, Stmt, Var};
use std::collections::BTreeSet;

/// The noninterference invariant: synchronization of every variable not
/// tainted by relaxation.
pub fn sync_invariant(program: &Program) -> RelFormula {
    let body = program.body();
    let tainted = relaxation_tainted(body);
    let arrays = array_vars(body);
    let vars: Vec<Var> = body
        .all_vars()
        .into_iter()
        .filter(|v| !tainted.contains(v))
        .collect();
    sync_vars(vars.iter(), &arrays)
}

/// `⋀ v<o> == v<r>` over every variable of the program — the canonical
/// "identical initial states" relational precondition.
pub fn initial_sync(program: &Program) -> RelFormula {
    let body = program.body();
    let arrays = array_vars(body);
    let vars: Vec<Var> = body.all_vars().into_iter().collect();
    sync_vars(vars.iter(), &arrays)
}

/// Rewrites the program, filling in every missing `rinvariant` on a
/// convergent loop with `⟨I · I⟩ ∧ sync(untainted)` (where `I` is the
/// loop's unary invariant, `true` if absent).
///
/// Loops carrying a `diverge` contract are left untouched — the diverge
/// rule does not use relational invariants.
pub fn augment_rel_invariants(program: &Program) -> Program {
    let body = program.body();
    let tainted = relaxation_tainted(body);
    let arrays = array_vars(body);
    let untainted: Vec<Var> = body
        .all_vars()
        .into_iter()
        .filter(|v| !tainted.contains(v))
        .collect();
    let sync = sync_vars(untainted.iter(), &arrays);
    let new_body = rewrite(body, &sync);
    Program::new(new_body).expect("rewriting preserves well-formedness")
}

fn rewrite(s: &Stmt, sync: &RelFormula) -> Stmt {
    match s {
        Stmt::While(w) => {
            let mut w = w.clone();
            w.body = Box::new(rewrite(&w.body, sync));
            if w.rel_invariant.is_none() && w.diverge.is_none() {
                let unary = w.invariant.clone().unwrap_or(Formula::True);
                w.rel_invariant = Some(RelFormula::pair(&unary, &unary).and(sync.clone()));
            }
            Stmt::While(w)
        }
        Stmt::If(i) => {
            let mut i = i.clone();
            i.then_branch = Box::new(rewrite(&i.then_branch, sync));
            i.else_branch = Box::new(rewrite(&i.else_branch, sync));
            Stmt::If(i)
        }
        Stmt::Seq(ss) => Stmt::Seq(ss.iter().map(|s| rewrite(s, sync)).collect()),
        other => other.clone(),
    }
}

/// The set of variables the relaxation can influence (re-exported for
/// reporting).
pub fn tainted_vars(program: &Program) -> BTreeSet<Var> {
    relaxation_tainted(program.body())
}

/// The variables some acceptability predicate constrains: free variables
/// of the relational postcondition, of every `relate` assertion, and of
/// every explicit `rinvariant` in the program.
///
/// A tainted variable *outside* this set has no bridge from original to
/// relaxed reasoning — the spec-coverage lint ([`crate::analysis::lint`])
/// flags it when the postcondition depends on it.
pub fn acceptability_constrained(program: &Program, spec: &Spec) -> BTreeSet<Var> {
    let mut out = rel_formula_var_names(&spec.rel_post);
    collect_rel_constraints(program.body(), &mut out);
    out
}

fn collect_rel_constraints(s: &Stmt, out: &mut BTreeSet<Var>) {
    match s {
        Stmt::Relate(_, b) => {
            out.extend(rel_formula_var_names(&RelFormula::from_rel_bool_expr(b)));
        }
        Stmt::While(w) => {
            if let Some(rinv) = &w.rel_invariant {
                out.extend(rel_formula_var_names(rinv));
            }
            collect_rel_constraints(&w.body, out);
        }
        Stmt::If(i) => {
            collect_rel_constraints(&i.then_branch, out);
            collect_rel_constraints(&i.else_branch, out);
        }
        Stmt::Seq(ss) => {
            for s in ss {
                collect_rel_constraints(s, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxed_lang::parse_program;

    #[test]
    fn sync_invariant_excludes_tainted() {
        let p = parse_program("relax (x) st (true); y = x; z = 1;").unwrap();
        let sync = sync_invariant(&p);
        let names: Vec<String> = relaxed_lang::free::rel_formula_var_names(&sync)
            .iter()
            .map(|v| v.name().to_string())
            .collect();
        assert!(names.contains(&"z".to_string()));
        assert!(!names.contains(&"x".to_string()));
        assert!(!names.contains(&"y".to_string()));
    }

    #[test]
    fn augment_fills_missing_rinvariants() {
        let p = parse_program(
            "relax (e) st (true);
             i = 0;
             while (i < n) invariant (i <= n || n < 0) { i = i + 1; }",
        )
        .unwrap();
        let p2 = augment_rel_invariants(&p);
        match p2.body() {
            Stmt::Seq(ss) => match &ss[2] {
                Stmt::While(w) => assert!(w.rel_invariant.is_some()),
                other => panic!("expected while, got {other:?}"),
            },
            other => panic!("expected seq, got {other:?}"),
        }
    }

    #[test]
    fn augment_leaves_diverge_loops_alone() {
        let p = parse_program(
            "relax (m) st (true);
             while (i < m) invariant (true) diverge post_o (true) post_r (true) { i = i + 1; }",
        )
        .unwrap();
        let p2 = augment_rel_invariants(&p);
        match p2.body() {
            Stmt::Seq(ss) => match &ss[1] {
                Stmt::While(w) => assert!(w.rel_invariant.is_none()),
                other => panic!("expected while, got {other:?}"),
            },
            other => panic!("expected seq, got {other:?}"),
        }
    }

    #[test]
    fn initial_sync_covers_all_variables() {
        let p = parse_program("relax (x) st (true); y = x;").unwrap();
        let sync = initial_sync(&p);
        let names: BTreeSet<String> = relaxed_lang::free::rel_formula_var_names(&sync)
            .iter()
            .map(|v| v.name().to_string())
            .collect();
        assert!(names.contains("x"));
        assert!(names.contains("y"));
    }
}
