//! The paper's proof rules (Figs. 7–9) as explicit *derivation trees* with
//! a rule-by-rule checker — the analogue of the paper's Coq artifact.
//!
//! Where the automated [`crate::vcgen`] calculus *computes* preconditions,
//! this module *checks* a derivation the developer (or the generator)
//! wrote down: each node names a rule, carries the sub-derivations the
//! rule demands, and checking validates the side conditions with the SMT
//! solver, returning the Hoare triple the derivation proves.
//!
//! Implemented rules (one constructor per rule in the figures):
//!
//! * `⊢o` (Fig. 7): `skip`, `assign`, `seq`, `havoc`, `assert`, `assume`,
//!   `relax` (as `assert`), `if`, `relate` (as `skip`), `while`, `conseq`.
//! * `⊢i` (Fig. 9): the same shapes with `relax` as `havoc` and `assume`
//!   as `assert` — selected by [`UnaryLogic`].
//! * `⊢r` (Fig. 8): `relax`, `relate`, `assert`, `assume`, convergent
//!   `if`/`while`, `seq`, `conseq`, and the `diverge` rule bridging to the
//!   unary logics.

use crate::encode::{encode_formula, encode_rel_formula, EncodeCtx};
use crate::vcgen::UnaryLogic;
use relaxed_lang::subst::{FreshVars, RelSubst, Subst};
use relaxed_lang::{BoolExpr, Formula, IntExpr, RelFormula, RelIntExpr, Side, Stmt, Var};
use relaxed_smt::Solver;
use std::fmt;

/// A unary Hoare triple `{pre} stmt {post}`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Triple {
    /// Precondition.
    pub pre: Formula,
    /// The statement.
    pub stmt: Stmt,
    /// Postcondition.
    pub post: Formula,
}

/// A relational Hoare triple `{pre*} stmt {post*}`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelTriple {
    /// Relational precondition.
    pub pre: RelFormula,
    /// The statement.
    pub stmt: Stmt,
    /// Relational postcondition.
    pub post: RelFormula,
}

/// Why a derivation failed to check.
#[derive(Clone, Debug)]
pub struct RuleError {
    /// Name of the violated rule or side condition.
    pub rule: String,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule {}: {}", self.rule, self.message)
    }
}

impl std::error::Error for RuleError {}

fn err<T>(rule: &str, message: impl Into<String>) -> Result<T, RuleError> {
    Err(RuleError {
        rule: rule.to_string(),
        message: message.into(),
    })
}

fn entails(p: &Formula, q: &Formula, rule: &str) -> Result<(), RuleError> {
    let goal = p.clone().implies(q.clone());
    let encoded = encode_formula(&goal, &mut EncodeCtx::new());
    let verdict = Solver::new().check_valid(&encoded);
    if verdict.is_valid() {
        Ok(())
    } else {
        err(
            rule,
            format!("entailment not proved: {p} ==> {q} ({verdict:?})"),
        )
    }
}

fn rel_entails(p: &RelFormula, q: &RelFormula, rule: &str) -> Result<(), RuleError> {
    let goal = p.clone().implies(q.clone());
    let encoded = encode_rel_formula(&goal, &mut EncodeCtx::new());
    let verdict = Solver::new().check_valid(&encoded);
    if verdict.is_valid() {
        Ok(())
    } else {
        err(
            rule,
            format!("entailment not proved: {p} ==> {q} ({verdict:?})"),
        )
    }
}

/// A derivation in one of the unary logics (`⊢o` / `⊢i`).
// Derivations are tree nodes already behind `Box`es in their parents;
// boxing the wide variants again would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum UnaryDeriv {
    /// `{P} skip {P}`
    Skip(Formula),
    /// `{Q[e/x]} x = e {Q}`
    Assign {
        /// Target variable.
        x: Var,
        /// Assigned expression.
        e: IntExpr,
        /// Postcondition `Q`.
        post: Formula,
    },
    /// `{P} s1 {R}`, `{R} s2 {Q}` ⟹ `{P} s1; s2 {Q}`
    Seq(Box<UnaryDeriv>, Box<UnaryDeriv>),
    /// Fig. 7 havoc: `{P} havoc (X) st e {(∃X'·P[X'/X]) ∧ e}` with the
    /// satisfiability premise.
    Havoc {
        /// Precondition `P`.
        pre: Formula,
        /// Havoc targets.
        targets: Vec<Var>,
        /// The predicate `e`.
        pred: BoolExpr,
    },
    /// `{P ∧ e} assert e {P ∧ e}`
    Assert {
        /// The frame `P`.
        frame: Formula,
        /// The asserted predicate.
        pred: BoolExpr,
    },
    /// `{P} assume e {P ∧ e}` in `⊢o`; `{P ∧ e} assume e {P ∧ e}` in `⊢i`.
    Assume {
        /// The frame `P`.
        frame: Formula,
        /// The assumed predicate.
        pred: BoolExpr,
    },
    /// Fig. 7: `relax` behaves as `assert e`. Fig. 9: as `havoc`.
    Relax {
        /// Precondition (used as havoc-pre in `⊢i`, assert-frame in `⊢o`).
        pre: Formula,
        /// Relax targets.
        targets: Vec<Var>,
        /// The predicate `e`.
        pred: BoolExpr,
    },
    /// `{P} relate l : e* {P}` (`⊢o` only).
    Relate(Formula, Stmt),
    /// `{P ∧ b} s1 {Q}`, `{P ∧ ¬b} s2 {Q}` ⟹ `{P} if (b) {s1} else {s2} {Q}`
    If {
        /// Branch condition.
        cond: BoolExpr,
        /// Derivation for the then branch.
        then_d: Box<UnaryDeriv>,
        /// Derivation for the else branch.
        else_d: Box<UnaryDeriv>,
    },
    /// `{P ∧ b} s {P}` ⟹ `{P} while (b) {s} {P ∧ ¬b}`
    While {
        /// Loop condition.
        cond: BoolExpr,
        /// Invariant derivation for the body.
        body_d: Box<UnaryDeriv>,
    },
    /// `⊨ P ⇒ P'`, `{P'} s {Q'}`, `⊨ Q' ⇒ Q` ⟹ `{P} s {Q}`
    Conseq {
        /// Strengthened precondition.
        pre: Formula,
        /// Inner derivation.
        inner: Box<UnaryDeriv>,
        /// Weakened postcondition.
        post: Formula,
    },
}

impl UnaryDeriv {
    /// Checks the derivation under `logic`, returning the proved triple.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError`] when a rule is misapplied or a side condition
    /// fails to verify.
    pub fn check(&self, logic: UnaryLogic) -> Result<Triple, RuleError> {
        match self {
            UnaryDeriv::Skip(p) => Ok(Triple {
                pre: p.clone(),
                stmt: Stmt::Skip,
                post: p.clone(),
            }),
            UnaryDeriv::Assign { x, e, post } => Ok(Triple {
                pre: Subst::single(x.clone(), e.clone()).apply(post),
                stmt: Stmt::Assign(x.clone(), e.clone()),
                post: post.clone(),
            }),
            UnaryDeriv::Seq(d1, d2) => {
                let t1 = d1.check(logic)?;
                let t2 = d2.check(logic)?;
                if t1.post != t2.pre {
                    return err(
                        "seq",
                        format!("mid-conditions differ: {} vs {}", t1.post, t2.pre),
                    );
                }
                Ok(Triple {
                    pre: t1.pre,
                    stmt: Stmt::seq([t1.stmt, t2.stmt]),
                    post: t2.post,
                })
            }
            UnaryDeriv::Havoc { pre, targets, pred } => {
                self.check_havoc_shape(pre, targets, pred, "havoc")
            }
            UnaryDeriv::Assert { frame, pred } => {
                let both = frame.clone().and(Formula::from_bool_expr(pred));
                Ok(Triple {
                    pre: both.clone(),
                    stmt: Stmt::Assert(pred.clone()),
                    post: both,
                })
            }
            UnaryDeriv::Assume { frame, pred } => {
                let post = frame.clone().and(Formula::from_bool_expr(pred));
                let pre = match logic {
                    // Fig. 7: assumptions are free.
                    UnaryLogic::Original => frame.clone(),
                    // Fig. 9: assumptions carry an assert-strength premise.
                    UnaryLogic::Intermediate => post.clone(),
                };
                Ok(Triple {
                    pre,
                    stmt: Stmt::Assume(pred.clone()),
                    post,
                })
            }
            UnaryDeriv::Relax { pre, targets, pred } => match logic {
                UnaryLogic::Original => {
                    // relax = assert e (state unchanged).
                    let both = pre.clone().and(Formula::from_bool_expr(pred));
                    Ok(Triple {
                        pre: both.clone(),
                        stmt: Stmt::Relax(targets.clone(), pred.clone()),
                        post: both,
                    })
                }
                UnaryLogic::Intermediate => {
                    let mut t = self.check_havoc_shape(pre, targets, pred, "relax-i")?;
                    t.stmt = Stmt::Relax(targets.clone(), pred.clone());
                    Ok(t)
                }
            },
            UnaryDeriv::Relate(p, stmt) => {
                if logic == UnaryLogic::Intermediate {
                    return err("relate", "relate is not part of the intermediate logic");
                }
                match stmt {
                    Stmt::Relate(_, _) => Ok(Triple {
                        pre: p.clone(),
                        stmt: stmt.clone(),
                        post: p.clone(),
                    }),
                    other => err("relate", format!("not a relate statement: {other}")),
                }
            }
            UnaryDeriv::If {
                cond,
                then_d,
                else_d,
            } => {
                let t1 = then_d.check(logic)?;
                let t2 = else_d.check(logic)?;
                if t1.post != t2.post {
                    return err("if", "branch postconditions differ");
                }
                // Recover P from the premise shapes {P ∧ b} / {P ∧ ¬b}:
                // accept any P1/P2 with P1 = P ∧ b and P2 = P ∧ ¬b via
                // conseq-style entailment against a declared P: we demand
                // the caller used Conseq to align shapes, i.e. here we
                // require syntactic shapes.
                let b = Formula::from_bool_expr(cond);
                let (p1, p2) = (t1.pre.clone(), t2.pre.clone());
                let p =
                    match (&p1, &p2) {
                        (Formula::And(pa, cb), Formula::And(pb, ncb))
                            if **cb == b && **ncb == b.clone().not() && pa == pb =>
                        {
                            (**pa).clone()
                        }
                        _ => return err(
                            "if",
                            "branch preconditions must be P ∧ b and P ∧ !b (use Conseq to align)",
                        ),
                    };
                Ok(Triple {
                    pre: p,
                    stmt: Stmt::if_then_else(cond.clone(), t1.stmt, t2.stmt),
                    post: t1.post,
                })
            }
            UnaryDeriv::While { cond, body_d } => {
                let t = body_d.check(logic)?;
                let b = Formula::from_bool_expr(cond);
                // Premise shape {P ∧ b} s {P}.
                let p = match &t.pre {
                    Formula::And(pa, cb) if **cb == b && **pa == t.post => (**pa).clone(),
                    _ => {
                        return err(
                            "while",
                            "body derivation must prove {P ∧ b} s {P} (use Conseq to align)",
                        )
                    }
                };
                Ok(Triple {
                    pre: p.clone(),
                    stmt: Stmt::while_loop(cond.clone(), t.stmt),
                    post: p.and(b.not()),
                })
            }
            UnaryDeriv::Conseq { pre, inner, post } => {
                let t = inner.check(logic)?;
                entails(pre, &t.pre, "conseq")?;
                entails(&t.post, post, "conseq")?;
                Ok(Triple {
                    pre: pre.clone(),
                    stmt: t.stmt,
                    post: post.clone(),
                })
            }
        }
    }

    /// Fig. 7 havoc: postcondition `(∃X'·P[X'/X]) ∧ e` plus the
    /// satisfiability premise `⟦(∃X'·P[X'/X]) ∧ e⟧ ≠ ∅`.
    fn check_havoc_shape(
        &self,
        pre: &Formula,
        targets: &[Var],
        pred: &BoolExpr,
        rule: &str,
    ) -> Result<Triple, RuleError> {
        let mut fresh = FreshVars::new();
        fresh.reserve(relaxed_lang::free::formula_vars(pre));
        fresh.reserve(relaxed_lang::free::bool_expr_vars(pred));
        let mut subst = Subst::new();
        let mut fresh_names = Vec::new();
        for t in targets {
            let t2 = fresh.fresh(t);
            subst.insert(t.clone(), IntExpr::Var(t2.clone()));
            fresh_names.push(t2);
        }
        let shifted = subst.apply(pre).exists_many(fresh_names);
        let post = shifted.and(Formula::from_bool_expr(pred));
        // Satisfiability premise: ¬(post ⇒ false).
        let encoded = encode_formula(&post, &mut EncodeCtx::new());
        match Solver::new().check_sat(&encoded) {
            relaxed_smt::SmtResult::Sat(_) => Ok(Triple {
                pre: pre.clone(),
                stmt: Stmt::Havoc(targets.to_vec(), pred.clone()),
                post,
            }),
            other => err(rule, format!("satisfiability premise failed: {other:?}")),
        }
    }
}

/// A derivation in the relational logic `⊢r` (Fig. 8).
// See `UnaryDeriv` on why the wide variants stay unboxed.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum RelDeriv {
    /// `{P*} skip {P*}`
    Skip(RelFormula),
    /// Lockstep assignment.
    Assign {
        /// Target variable.
        x: Var,
        /// Assigned expression.
        e: IntExpr,
        /// Postcondition `Q*`.
        post: RelFormula,
    },
    /// Sequential composition.
    Seq(Box<RelDeriv>, Box<RelDeriv>),
    /// Fig. 8 relax: only `X<r>` is substituted; post gains `⟨e · e⟩`.
    Relax {
        /// Precondition `P*`.
        pre: RelFormula,
        /// Relax targets.
        targets: Vec<Var>,
        /// The predicate `e`.
        pred: BoolExpr,
    },
    /// `{P* ∧ e*} relate l : e* {P* ∧ e*}`
    Relate {
        /// The frame `P*`.
        frame: RelFormula,
        /// The relate statement.
        stmt: Stmt,
    },
    /// Fig. 8 assert: premise `⊨ P* ∧ inj_o(e) ⇒ inj_r(e)`.
    Assert {
        /// The frame `P*`.
        frame: RelFormula,
        /// The asserted predicate.
        pred: BoolExpr,
    },
    /// Fig. 8 assume: same premise as assert.
    Assume {
        /// The frame `P*`.
        frame: RelFormula,
        /// The assumed predicate.
        pred: BoolExpr,
    },
    /// Convergent if: premise `⊨ P* ⇒ ⟨b·b⟩ ∨ ⟨¬b·¬b⟩`.
    If {
        /// The precondition `P*`.
        pre: RelFormula,
        /// Branch condition.
        cond: BoolExpr,
        /// Then-branch derivation (from `P* ∧ ⟨b·b⟩`).
        then_d: Box<RelDeriv>,
        /// Else-branch derivation (from `P* ∧ ⟨¬b·¬b⟩`).
        else_d: Box<RelDeriv>,
    },
    /// Convergent while with relational invariant `P*`.
    While {
        /// The invariant `P*`.
        invariant: RelFormula,
        /// Loop condition.
        cond: BoolExpr,
        /// Body derivation (from `P* ∧ ⟨b·b⟩` back to `P*`).
        body_d: Box<RelDeriv>,
    },
    /// The diverge rule: unary sub-derivations for each side.
    Diverge {
        /// The relational precondition `P*`.
        pre: RelFormula,
        /// Unary `⊢o` derivation `{Po} s {Qo}`.
        original: Box<UnaryDeriv>,
        /// Unary `⊢i` derivation `{Pr} s {Qr}`.
        intermediate: Box<UnaryDeriv>,
    },
    /// Consequence.
    Conseq {
        /// Strengthened precondition.
        pre: RelFormula,
        /// Inner derivation.
        inner: Box<RelDeriv>,
        /// Weakened postcondition.
        post: RelFormula,
    },
}

impl RelDeriv {
    /// Checks the derivation, returning the proved relational triple.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError`] when a rule is misapplied or a side condition
    /// fails to verify.
    pub fn check(&self) -> Result<RelTriple, RuleError> {
        match self {
            RelDeriv::Skip(p) => Ok(RelTriple {
                pre: p.clone(),
                stmt: Stmt::Skip,
                post: p.clone(),
            }),
            RelDeriv::Assign { x, e, post } => {
                let mut subst = RelSubst::new();
                subst.insert(
                    x.clone(),
                    Side::Original,
                    RelIntExpr::inject(e, Side::Original),
                );
                subst.insert(
                    x.clone(),
                    Side::Relaxed,
                    RelIntExpr::inject(e, Side::Relaxed),
                );
                Ok(RelTriple {
                    pre: subst.apply(post),
                    stmt: Stmt::Assign(x.clone(), e.clone()),
                    post: post.clone(),
                })
            }
            RelDeriv::Seq(d1, d2) => {
                let t1 = d1.check()?;
                let t2 = d2.check()?;
                if t1.post != t2.pre {
                    return err("seq", "mid-conditions differ");
                }
                Ok(RelTriple {
                    pre: t1.pre,
                    stmt: Stmt::seq([t1.stmt, t2.stmt]),
                    post: t2.post,
                })
            }
            RelDeriv::Relax { pre, targets, pred } => {
                // Post: (∃X'<r>·P*[X'<r>/X<r>]) ∧ ⟨e·e⟩, with the
                // satisfiability premise on the relaxed side.
                let mut fresh = FreshVars::new();
                fresh.reserve(relaxed_lang::free::rel_formula_var_names(pre));
                fresh.reserve(relaxed_lang::free::bool_expr_vars(pred));
                let mut subst = RelSubst::new();
                let mut names = Vec::new();
                for t in targets {
                    let t2 = fresh.fresh(t);
                    subst.insert(
                        t.clone(),
                        Side::Relaxed,
                        RelIntExpr::Var(t2.clone(), Side::Relaxed),
                    );
                    names.push(t2);
                }
                let mut shifted = subst.apply(pre);
                for n in names {
                    shifted = shifted.exists(n, Side::Relaxed);
                }
                let epred = Formula::from_bool_expr(pred);
                let post = shifted.and(RelFormula::pair(&epred, &epred));
                let feas = shifted_feasibility(pre, targets, pred);
                let encoded = encode_rel_formula(&feas, &mut EncodeCtx::new());
                match Solver::new().check_sat(&encoded) {
                    relaxed_smt::SmtResult::Sat(_) => Ok(RelTriple {
                        pre: pre.clone(),
                        stmt: Stmt::Relax(targets.clone(), pred.clone()),
                        post,
                    }),
                    other => err("relax", format!("satisfiability premise failed: {other:?}")),
                }
            }
            RelDeriv::Relate { frame, stmt } => match stmt {
                Stmt::Relate(_, e) => {
                    let both = frame.clone().and(RelFormula::from_rel_bool_expr(e));
                    Ok(RelTriple {
                        pre: both.clone(),
                        stmt: stmt.clone(),
                        post: both,
                    })
                }
                other => err("relate", format!("not a relate statement: {other}")),
            },
            RelDeriv::Assert { frame, pred } | RelDeriv::Assume { frame, pred } => {
                let is_assert = matches!(self, RelDeriv::Assert { .. });
                let e = Formula::from_bool_expr(pred);
                let premise = frame.clone().and(RelFormula::inject(&e, Side::Original));
                rel_entails(
                    &premise,
                    &RelFormula::inject(&e, Side::Relaxed),
                    if is_assert { "assert" } else { "assume" },
                )?;
                let post = frame.clone().and(RelFormula::pair(&e, &e));
                Ok(RelTriple {
                    pre: frame.clone(),
                    stmt: if is_assert {
                        Stmt::Assert(pred.clone())
                    } else {
                        Stmt::Assume(pred.clone())
                    },
                    post,
                })
            }
            RelDeriv::If {
                pre,
                cond,
                then_d,
                else_d,
            } => {
                let b = Formula::from_bool_expr(cond);
                let both = RelFormula::pair(&b, &b);
                let neither = RelFormula::pair(&b.clone().not(), &b.clone().not());
                rel_entails(pre, &both.clone().or(neither.clone()), "if-convergence")?;
                let t1 = then_d.check()?;
                let t2 = else_d.check()?;
                if t1.post != t2.post {
                    return err("if", "branch postconditions differ");
                }
                if t1.pre != pre.clone().and(both) || t2.pre != pre.clone().and(neither) {
                    return err(
                        "if",
                        "branch preconditions must be P* ∧ ⟨b·b⟩ and P* ∧ ⟨¬b·¬b⟩",
                    );
                }
                Ok(RelTriple {
                    pre: pre.clone(),
                    stmt: Stmt::if_then_else(cond.clone(), t1.stmt, t2.stmt),
                    post: t1.post,
                })
            }
            RelDeriv::While {
                invariant,
                cond,
                body_d,
            } => {
                let b = Formula::from_bool_expr(cond);
                let both = RelFormula::pair(&b, &b);
                let neither = RelFormula::pair(&b.clone().not(), &b.clone().not());
                rel_entails(
                    invariant,
                    &both.clone().or(neither.clone()),
                    "while-convergence",
                )?;
                let t = body_d.check()?;
                if t.pre != invariant.clone().and(both) || t.post != *invariant {
                    return err("while", "body must prove {P* ∧ ⟨b·b⟩} s {P*}");
                }
                Ok(RelTriple {
                    pre: invariant.clone(),
                    stmt: Stmt::while_loop(cond.clone(), t.stmt),
                    post: invariant.clone().and(neither),
                })
            }
            RelDeriv::Diverge {
                pre,
                original,
                intermediate,
            } => {
                let to = original.check(UnaryLogic::Original)?;
                let ti = intermediate.check(UnaryLogic::Intermediate)?;
                if to.stmt != ti.stmt {
                    return err(
                        "diverge",
                        "the two sub-derivations prove different statements",
                    );
                }
                if !to.stmt.no_rel() {
                    return err("diverge", "no_rel(s) violated");
                }
                // P* ⊨o Po and P* ⊨r Pr via injections.
                rel_entails(
                    pre,
                    &RelFormula::inject(&to.pre, Side::Original),
                    "diverge-projo",
                )?;
                rel_entails(
                    pre,
                    &RelFormula::inject(&ti.pre, Side::Relaxed),
                    "diverge-projr",
                )?;
                Ok(RelTriple {
                    pre: pre.clone(),
                    stmt: to.stmt,
                    post: RelFormula::pair(&to.post, &ti.post),
                })
            }
            RelDeriv::Conseq { pre, inner, post } => {
                let t = inner.check()?;
                rel_entails(pre, &t.pre, "conseq")?;
                rel_entails(&t.post, post, "conseq")?;
                Ok(RelTriple {
                    pre: pre.clone(),
                    stmt: t.stmt,
                    post: post.clone(),
                })
            }
        }
    }
}

/// `(∃X'<r>·P*[X'<r>/X<r>]) ∧ inj_r(e)` — the relax rule's premise body.
fn shifted_feasibility(pre: &RelFormula, targets: &[Var], pred: &BoolExpr) -> RelFormula {
    let mut fresh = FreshVars::new();
    fresh.reserve(relaxed_lang::free::rel_formula_var_names(pre));
    fresh.reserve(relaxed_lang::free::bool_expr_vars(pred));
    let mut subst = RelSubst::new();
    let mut names = Vec::new();
    for t in targets {
        let t2 = fresh.fresh(t);
        subst.insert(
            t.clone(),
            Side::Relaxed,
            RelIntExpr::Var(t2.clone(), Side::Relaxed),
        );
        names.push(t2);
    }
    let mut shifted = subst.apply(pre);
    for n in names {
        shifted = shifted.exists(n, Side::Relaxed);
    }
    shifted.and(RelFormula::inject(
        &Formula::from_bool_expr(pred),
        Side::Relaxed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxed_lang::builder::{c, v};
    use relaxed_lang::{parse_formula, parse_rel_formula};

    fn f(src: &str) -> Formula {
        parse_formula(src).unwrap()
    }
    fn rf(src: &str) -> RelFormula {
        parse_rel_formula(src).unwrap()
    }

    #[test]
    fn assign_rule_computes_substituted_pre() {
        let d = UnaryDeriv::Assign {
            x: Var::new("y"),
            e: v("x") + c(1),
            post: f("y >= 1"),
        };
        let t = d.check(UnaryLogic::Original).unwrap();
        assert_eq!(t.pre, f("x + 1 >= 1"));
    }

    #[test]
    fn conseq_discharges_entailments() {
        let inner = UnaryDeriv::Assign {
            x: Var::new("y"),
            e: v("x") + c(1),
            post: f("y >= 1"),
        };
        let d = UnaryDeriv::Conseq {
            pre: f("x >= 0"),
            inner: Box::new(inner),
            post: f("y >= 0"),
        };
        assert!(d.check(UnaryLogic::Original).is_ok());
        // A wrong strengthening must fail.
        let bad = UnaryDeriv::Conseq {
            pre: f("x >= 0 - 5"),
            inner: Box::new(UnaryDeriv::Assign {
                x: Var::new("y"),
                e: v("x") + c(1),
                post: f("y >= 1"),
            }),
            post: f("y >= 0"),
        };
        assert!(bad.check(UnaryLogic::Original).is_err());
    }

    #[test]
    fn havoc_rule_demands_satisfiability() {
        let ok = UnaryDeriv::Havoc {
            pre: f("true"),
            targets: vec![Var::new("x")],
            pred: v("x").ge(c(0)),
        };
        assert!(ok.check(UnaryLogic::Original).is_ok());
        let bad = UnaryDeriv::Havoc {
            pre: f("true"),
            targets: vec![Var::new("x")],
            pred: v("x").lt(v("x")),
        };
        assert!(bad.check(UnaryLogic::Original).is_err());
    }

    #[test]
    fn relax_differs_between_unary_logics() {
        let d = UnaryDeriv::Relax {
            pre: f("x == 5"),
            targets: vec![Var::new("x")],
            pred: c(0).le(v("x")).and(v("x").le(c(10))),
        };
        // ⊢o: assert-shaped, state preserved: post contains x == 5.
        let to = d.check(UnaryLogic::Original).unwrap();
        assert_eq!(to.pre, f("x == 5 && (0 <= x && x <= 10)"));
        // ⊢i: havoc-shaped: x == 5 is shifted under ∃.
        let ti = d.check(UnaryLogic::Intermediate).unwrap();
        assert_ne!(ti.post, to.post);
    }

    #[test]
    fn assume_is_free_only_in_original() {
        let d = UnaryDeriv::Assume {
            frame: f("true"),
            pred: v("k").ge(c(0)),
        };
        let to = d.check(UnaryLogic::Original).unwrap();
        assert_eq!(to.pre, Formula::True);
        let ti = d.check(UnaryLogic::Intermediate).unwrap();
        assert_eq!(ti.pre, f("k >= 0"));
    }

    #[test]
    fn rel_assert_premise_via_noninterference() {
        let d = RelDeriv::Assert {
            frame: rf("k<o> == k<r>"),
            pred: v("k").ge(c(0)),
        };
        let t = d.check().unwrap();
        assert_eq!(t.pre, rf("k<o> == k<r>"));
        // Without the sync fact the premise fails.
        let bad = RelDeriv::Assert {
            frame: rf("true"),
            pred: v("k").ge(c(0)),
        };
        assert!(bad.check().is_err());
    }

    #[test]
    fn rel_relax_posts_pair_of_predicates() {
        let d = RelDeriv::Relax {
            pre: rf("x<o> == x<r>"),
            targets: vec![Var::new("x")],
            pred: c(0).le(v("x")).and(v("x").le(c(3))),
        };
        let t = d.check().unwrap();
        // Post contains ⟨e·e⟩: both injections of the predicate.
        let text = t.post.to_string();
        assert!(text.contains("x<r>"), "{text}");
        assert!(text.contains("x<o>"), "{text}");
    }

    #[test]
    fn convergent_if_demands_convergence_premise() {
        // Condition over synced variable: fine.
        let pre = rf("z<o> == z<r> && y<o> == y<r>");
        let b = v("z").gt(c(0));
        let both = RelFormula::pair(&Formula::from_bool_expr(&b), &Formula::from_bool_expr(&b));
        let neither = RelFormula::pair(
            &Formula::from_bool_expr(&b.clone().not()),
            &Formula::from_bool_expr(&b.clone().not()),
        );
        let post = rf("true");
        let d = RelDeriv::If {
            pre: pre.clone(),
            cond: b.clone(),
            then_d: Box::new(RelDeriv::Conseq {
                pre: pre.clone().and(both),
                inner: Box::new(RelDeriv::Skip(rf("true"))),
                post: post.clone(),
            }),
            else_d: Box::new(RelDeriv::Conseq {
                pre: pre.clone().and(neither),
                inner: Box::new(RelDeriv::Skip(rf("true"))),
                post: post.clone(),
            }),
        };
        assert!(d.check().is_ok());
        // Condition over an unsynced variable: convergence premise fails.
        let bad = RelDeriv::If {
            pre: rf("y<o> == y<r>"),
            cond: v("z").gt(c(0)),
            then_d: Box::new(RelDeriv::Skip(rf("true"))),
            else_d: Box::new(RelDeriv::Skip(rf("true"))),
        };
        assert!(bad.check().is_err());
    }

    #[test]
    fn diverge_bridges_unary_logics() {
        // s = assume k >= 0 — under ⊢o the assumption is free; under ⊢i it
        // must be justified by the relaxed-side precondition. The diverge
        // rule then demands P* project onto both unary preconditions.
        let s_o = UnaryDeriv::Conseq {
            pre: f("true"),
            inner: Box::new(UnaryDeriv::Assume {
                frame: f("true"),
                pred: v("k").ge(c(0)),
            }),
            post: f("k >= 0"),
        };
        let s_i = UnaryDeriv::Conseq {
            pre: f("k >= 0"),
            inner: Box::new(UnaryDeriv::Assume {
                frame: f("true"),
                pred: v("k").ge(c(0)),
            }),
            post: f("k >= 0"),
        };
        let d = RelDeriv::Diverge {
            pre: rf("k<o> == k<r> && k<r> >= 0"),
            original: Box::new(s_o),
            intermediate: Box::new(s_i),
        };
        let t = d.check().unwrap();
        assert_eq!(t.post, RelFormula::pair(&f("k >= 0"), &f("k >= 0")));
        // A precondition that fails to project onto Pr is rejected.
        let bad = RelDeriv::Diverge {
            pre: rf("k<o> == k<r>"),
            original: Box::new(UnaryDeriv::Assume {
                frame: f("true"),
                pred: v("k").ge(c(0)),
            }),
            intermediate: Box::new(UnaryDeriv::Assume {
                frame: f("true"),
                pred: v("k").ge(c(0)),
            }),
        };
        assert!(bad.check().is_err());
    }

    #[test]
    fn seq_rule_rejects_mismatched_midconditions() {
        let d = UnaryDeriv::Seq(
            Box::new(UnaryDeriv::Skip(f("x >= 0"))),
            Box::new(UnaryDeriv::Skip(f("x >= 1"))),
        );
        assert!(d.check(UnaryLogic::Original).is_err());
        let ok = UnaryDeriv::Seq(
            Box::new(UnaryDeriv::Skip(f("x >= 0"))),
            Box::new(UnaryDeriv::Skip(f("x >= 0"))),
        );
        assert!(ok.check(UnaryLogic::Original).is_ok());
    }
}
