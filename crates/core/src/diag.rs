//! Internal stderr diagnostics.
//!
//! Library code paths must not spam consumer (or CI) logs: every warning
//! a library path emits goes through [`warn`], which prefixes the crate
//! name and is silenced entirely when `DISCHARGE_QUIET=1`. Structured
//! surfaces ([`Verifier::env_warnings`](crate::api::Verifier::env_warnings),
//! [`DischargeEngine::cache_warnings`](crate::engine::DischargeEngine::cache_warnings))
//! are unaffected by the quiet flag — only the stderr side channel is.

use std::fmt;

/// Whether `DISCHARGE_QUIET=1` silences library stderr diagnostics.
pub(crate) fn quiet() -> bool {
    std::env::var_os("DISCHARGE_QUIET").is_some_and(|v| v == "1")
}

/// Writes one `relaxed-core:`-prefixed warning to stderr unless quieted.
// The one sanctioned library print site: every other module routes here.
#[allow(clippy::print_stderr)]
pub(crate) fn warn(message: fmt::Arguments<'_>) {
    if !quiet() {
        eprintln!("relaxed-core: {message}");
    }
}
