//! E5 — the performance-vs-accuracy trade-off space that motivates
//! relaxed programming (paper §1).
//!
//! Perforates a reduction loop at strides 1..=8 and measures, under the
//! relaxed semantics, how much work is skipped versus how much output
//! accuracy is lost.
//!
//! Run with: `cargo run --example perforation_sweep`

use relaxed_programs::interp::oracle::ExtremalOracle;
use relaxed_programs::interp::{run_original, run_relaxed, IdentityOracle};
use relaxed_programs::lang::{parse_stmt, State, Stmt, Var};
use relaxed_programs::transforms::perforate_loop;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: i64 = 240;
    let header = parse_stmt(&format!("i = 0; s = 0; n = {N};"))?;
    let work = parse_stmt("while (i < n) { s = s + i; iters = iters + 1; i = i + 1; }")?;
    let exact = {
        let program = Stmt::seq([header.clone(), work.clone()]);
        let out = run_original(
            &program,
            State::from_ints([("iters", 0)]),
            &mut IdentityOracle,
            1_000_000,
        );
        out.state().unwrap().get_int(&Var::new("s")).unwrap()
    };
    println!("reduction over {N} elements; exact result {exact}\n");
    println!(
        "{:>7} {:>9} {:>10} {:>10} {:>9}",
        "stride", "iters", "result", "error", "speedup"
    );
    for stride in 1..=8i64 {
        let perforated = perforate_loop(&work, stride);
        let program = Stmt::seq([header.clone(), perforated]);
        // The adversary maximizes the stride — the most aggressive point
        // of the trade-off space this relaxation exposes.
        let mut oracle = ExtremalOracle::maximizing();
        let out = run_relaxed(
            &program,
            State::from_ints([("iters", 0)]),
            &mut oracle,
            1_000_000,
        );
        let state = out.state().unwrap();
        let s = state.get_int(&Var::new("s")).unwrap();
        let iters = state.get_int(&Var::new("iters")).unwrap();
        let error = (exact - s).abs() as f64 / exact as f64 * 100.0;
        let speedup = N as f64 / iters as f64;
        println!("{stride:>7} {iters:>9} {s:>10} {error:>9.1}% {speedup:>8.2}x");
    }
    println!("\nwork falls ~linearly with stride while error grows — the");
    println!("trade-off space §1 of the paper describes.");
    Ok(())
}
