//! E5 — the performance-vs-accuracy trade-off space that motivates
//! relaxed programming (paper §1).
//!
//! Perforates a reduction loop at strides 1..=8; each perforated variant
//! is first checked statically (the `⊢o` and `⊢i` stages of a `Verifier`
//! session — the loop stays well-formed under any admissible stride),
//! then executed under the relaxed semantics to measure how much work is
//! skipped versus how much output accuracy is lost.
//!
//! Run with: `cargo run --example perforation_sweep`

use relaxed_programs::interp::oracle::ExtremalOracle;
use relaxed_programs::interp::{run_original, run_relaxed, IdentityOracle};
use relaxed_programs::lang::{parse_formula, parse_stmt, Formula, Program, State, Stmt, Var};
use relaxed_programs::transforms::perforate_loop;
use relaxed_programs::{Spec, Stage, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: i64 = 240;
    let header = parse_stmt(&format!("i = 0; s = 0; n = {N};"))?;
    // The invariant covers the perforated form too: any admissible
    // stride keeps the index nonnegative.
    let work = parse_stmt(
        "while (i < n) invariant (0 <= i && 1 <= i_step) {
           s = s + i; iters = iters + 1; i = i + 1;
         }",
    )?;
    let exact = {
        let program = Stmt::seq([header.clone(), work.clone()]);
        let out = run_original(
            &program,
            State::from_ints([("iters", 0), ("i_step", 1)]),
            &mut IdentityOracle,
            1_000_000,
        );
        out.state().unwrap().get_int(&Var::new("s")).unwrap()
    };
    println!("reduction over {N} elements; exact result {exact}\n");

    // One session verifies every perforated variant; its verdict cache
    // carries obligations shared between strides.
    let verifier = Verifier::new();
    let spec = Spec {
        pre: Formula::True,
        post: parse_formula("0 <= i")?,
        rel_pre: relaxed_programs::lang::RelFormula::True,
        rel_post: relaxed_programs::lang::RelFormula::True,
    };

    println!(
        "{:>7} {:>5} {:>9} {:>10} {:>10} {:>9}",
        "stride", "⊢o/⊢i", "iters", "result", "error", "speedup"
    );
    for stride in 1..=8i64 {
        let perforated = perforate_loop(&work, stride);
        let program = Program::new(Stmt::seq([header.clone(), perforated]))?;
        // Static check: the perforated loop satisfies its invariant in
        // both the original (stride pinned to 1) and the intermediate
        // (any stride in 1..=max) semantics.
        let original = verifier.stage(Stage::Original).check(&program, &spec)?;
        let intermediate = verifier.stage(Stage::Intermediate).check(&program, &spec)?;
        assert!(original.verified(), "⊢o failed at stride {stride}");
        assert!(intermediate.verified(), "⊢i failed at stride {stride}");

        // The adversary maximizes the stride — the most aggressive point
        // of the trade-off space this relaxation exposes.
        let mut oracle = ExtremalOracle::maximizing();
        let out = run_relaxed(
            program.body(),
            State::from_ints([("iters", 0)]),
            &mut oracle,
            1_000_000,
        );
        let state = out.state().unwrap();
        let s = state.get_int(&Var::new("s")).unwrap();
        let iters = state.get_int(&Var::new("iters")).unwrap();
        let error = (exact - s).abs() as f64 / exact as f64 * 100.0;
        let speedup = N as f64 / iters as f64;
        println!(
            "{stride:>7} {:>5} {iters:>9} {s:>10} {error:>9.1}% {speedup:>8.2}x",
            "✓✓"
        );
    }
    let stats = verifier.stats();
    println!(
        "\nwork falls ~linearly with stride while error grows — the\ntrade-off space §1 of the paper describes.\n({} static goals solved once, {} answered from the session cache)",
        stats.cache_misses, stats.cache_hits
    );
    Ok(())
}
