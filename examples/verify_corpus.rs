//! Corpus-scale batch verification: every §5 case study (and its
//! mutated must-fail variant) checked in one `Verifier::check_corpus`
//! call, fanned across the session's worker pool with the
//! structural-hash verdict cache shared *across programs*.
//!
//! Prints the `CorpusReport` JSON rendering — the shape a verification
//! service or CI gate would consume.
//!
//! Run with: `cargo run --example verify_corpus`
//!
//! With `DISCHARGE_CACHE=<path>` the session persists its verdict cache
//! to disk and reloads it on the next run, so a rerun discharges
//! previously-proved goals with zero solver invocations. The final
//! `persistent cache: loaded=.. disk_hits=.. persisted=..` line is the
//! machine-readable warm/cold signal the CI `cache-persistence` job
//! gates on.

use relaxed_programs::{casestudies, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let verifier = Verifier::from_env();
    for warning in verifier.env_warnings() {
        eprintln!("verify_corpus: {warning}");
    }
    for warning in verifier.cache_warnings() {
        eprintln!("verify_corpus: {warning}");
    }

    let corpus = casestudies::corpus();
    let started = std::time::Instant::now();
    let report = verifier.check_corpus_named(&corpus);
    let elapsed = started.elapsed();

    println!("{report}");
    println!("{}", report.to_json());
    println!(
        "verified {} programs in {elapsed:.1?} on {} workers",
        report.len(),
        report.engine.workers
    );

    // The three paper case studies verify; their mutations must not.
    for entry in &report.entries {
        let expected = !entry.name.ends_with("_broken");
        assert_eq!(
            entry.verified(),
            expected,
            "{}: expected verified={expected}",
            entry.name
        );
    }
    // The corpus-scale payoff: programs share verdicts through the
    // session cache (each broken variant re-proves most of its
    // counterpart's obligations). With concurrent fan-out the cold-cache
    // hit count is scheduling-dependent, so the deterministic assertion
    // is on a warm revalidation pass: every verdict is reused, and all
    // reuse crosses program (owner) boundaries.
    println!(
        "cold pass: {} of {} verdicts reused across programs",
        report.cross_program_hits(),
        report.engine.cache_hits + report.engine.cache_misses
    );
    let warm = verifier.check_corpus_named(&corpus);
    assert_eq!(warm.engine.cache_misses, 0, "warm pass must not re-solve");
    assert!(
        warm.cross_program_hits() > 0,
        "expected cross-program cache hits, got stats {:?}",
        warm.engine
    );
    println!(
        "warm revalidation: {} verdicts, all served across programs from the session cache",
        warm.engine.cache_hits
    );

    // With DISCHARGE_CACHE set, the session cache outlives the process:
    // report the disk-level numbers (and flush explicitly so an I/O
    // error fails the run instead of being swallowed by the drop path).
    if std::env::var_os("DISCHARGE_CACHE").is_some() {
        let persisted = verifier.persist()?;
        let stats = verifier.stats();
        // No hard assert on loaded ⇒ disk hits here: a store restored
        // from an older revision can be fingerprint-compatible yet keyed
        // by goals a VC-generation change renamed, which is a legitimate
        // cold start. CI's warm leg — same binary, same store — gates on
        // this line instead (see the cache-persistence job).
        println!(
            "persistent cache: loaded={} disk_hits={} persisted={persisted}",
            stats.loaded, stats.disk_hits
        );
    }
    Ok(())
}
