//! Corpus-scale batch verification: every §5 case study (and its
//! mutated must-fail variant) checked in one `Verifier::check_corpus`
//! call, fanned across the session's worker pool with the
//! structural-hash verdict cache shared *across programs*.
//!
//! Prints the `CorpusReport` JSON rendering — the shape a verification
//! service or CI gate would consume.
//!
//! Run with: `cargo run --example verify_corpus`
//!
//! With `DISCHARGE_CACHE=<path>` the session persists its verdict cache
//! to disk and reloads it on the next run, so a rerun discharges
//! previously-proved goals with zero solver invocations. The final
//! `persistent cache: loaded=.. disk_hits=.. persisted=..` line is the
//! machine-readable warm/cold signal the CI `cache-persistence` job
//! gates on.
//!
//! With `--sharded` (or `DISCHARGE_SHARDS=<n>`) the corpus is *also*
//! verified across `relaxed-shardd` worker processes (build them first:
//! `cargo build --release -p relaxed-bench`) and the sharded report is
//! asserted verdict-identical to the in-process baseline — the CI
//! `sharded-corpus` job's equivalence gate. Under `DISCHARGE_CACHE` the
//! baseline persists its verdicts first, so the sharded run must answer
//! entirely from the shared store (≥1 cross-process disk hit, zero
//! solver runs).
//!
//! With `--service <addr>` (or `RELAXED_SERVICE=<addr>`) the corpus is
//! submitted to a running `relaxed-serviced` daemon from **two
//! concurrent client threads**, each asserted verdict-identical to the
//! in-process baseline — the CI `service-corpus` job's equivalence gate.
//! The final `service: clients=.. disk_hits=.. solver_runs=..` line is
//! its machine-readable signal (warm store ⇒ `solver_runs=0` with
//! cross-client disk hits).
//!
//! With `--trace <out.json>` the in-process run records telemetry spans
//! and writes a Chrome trace-event file (load it in Perfetto /
//! `about://tracing`), then validates it with the crate's own JSON
//! parser and prints the machine-readable
//! `trace: path=.. events=.. solve_spans=..` line the CI `trace-smoke`
//! job gates on. `--slow <N>` additionally prints the N slowest solve
//! spans as a goal table.
//!
//! With `--edit-reverify` the example becomes the goal-dependency-map
//! gate: verify the corpus cold into a scratch persistent store, patch
//! one case-study spec, re-verify, and assert the solver ran **exactly
//! once per goal the edit dirtied** — with an untouched sibling program
//! replayed from the store without any solver work — before checking
//! the incremental report verdict-identical to a full in-process run.
//! The final `edit-reverify: ..` line is the CI `edit-reverify` job's
//! machine-readable signal.

use relaxed_programs::{casestudies, CorpusPolicy, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|arg| arg == "--edit-reverify") {
        return edit_reverify_main();
    }
    let sharded_flag = args.iter().any(|arg| arg == "--sharded");
    let service_flag = args.iter().position(|arg| arg == "--service");
    let trace_path = args
        .iter()
        .position(|arg| arg == "--trace")
        .map(|at| match args.get(at + 1) {
            Some(path) => Ok(path.clone()),
            None => Err("--trace needs an output file path"),
        })
        .transpose()?;
    let slow_n: usize = args
        .iter()
        .position(|arg| arg == "--slow")
        .map(|at| match args.get(at + 1).map(|raw| raw.parse()) {
            Some(Ok(n)) => Ok(n),
            _ => Err("--slow needs an unsigned integer"),
        })
        .transpose()?
        .unwrap_or(0);
    let verifier = {
        // `Verifier::from_env()` plus the trace flag (which wins over
        // `DISCHARGE_TRACE`).
        let mut builder = Verifier::builder().env();
        if let Some(path) = &trace_path {
            builder = builder.trace_file(path);
        }
        builder.build()
    };
    for warning in verifier.env_warnings() {
        eprintln!("verify_corpus: {warning}");
    }
    for warning in verifier.cache_warnings() {
        eprintln!("verify_corpus: {warning}");
    }
    if service_flag.is_some() || matches!(verifier.config().corpus, CorpusPolicy::Service { .. }) {
        // `--service <addr>` wins over the env knob.
        let addr = match service_flag.and_then(|at| args.get(at + 1).cloned()) {
            Some(addr) => addr,
            None => match &verifier.config().corpus {
                CorpusPolicy::Service { addr } => addr.clone(),
                _ => {
                    return Err("--service needs an address (or set RELAXED_SERVICE)".into());
                }
            },
        };
        drop(verifier);
        return service_main(addr);
    }
    if sharded_flag || matches!(verifier.config().corpus, CorpusPolicy::Sharded { .. }) {
        drop(verifier);
        return sharded_main();
    }

    let corpus = casestudies::corpus();
    let started = std::time::Instant::now();
    let report = verifier.check_corpus_named(&corpus);
    let elapsed = started.elapsed();

    println!("{report}");
    println!("{}", report.to_json());
    println!(
        "verified {} programs in {elapsed:.1?} on {} workers",
        report.len(),
        report.engine.workers
    );

    // The three paper case studies verify; their mutations must not.
    for entry in &report.entries {
        let expected = !entry.name.ends_with("_broken");
        assert_eq!(
            entry.verified(),
            expected,
            "{}: expected verified={expected}",
            entry.name
        );
    }
    // The corpus-scale payoff: programs share verdicts through the
    // session cache (each broken variant re-proves most of its
    // counterpart's obligations). With concurrent fan-out the cold-cache
    // hit count is scheduling-dependent, so the deterministic assertion
    // is on a warm revalidation pass: every verdict is reused, and all
    // reuse crosses program (owner) boundaries.
    println!(
        "cold pass: {} of {} verdicts reused across programs",
        report.cross_program_hits(),
        report.engine.cache_hits + report.engine.cache_misses
    );
    let warm = verifier.check_corpus_named(&corpus);
    assert_eq!(warm.engine.cache_misses, 0, "warm pass must not re-solve");
    if std::env::var_os("DISCHARGE_CACHE").is_some() && verifier.config().depmap {
        // Under a persistent store the goal dependency map replays whole
        // unchanged programs without regenerating their VCs, so reuse
        // surfaces as per-goal replay hits rather than cross-program
        // hits (the `--edit-reverify` mode gates that path precisely).
        assert!(
            warm.engine.cache_hits > 0,
            "expected replayed verdicts, got stats {:?}",
            warm.engine
        );
        println!(
            "warm revalidation: {} verdicts replayed through the goal dependency map",
            warm.engine.cache_hits
        );
    } else {
        assert!(
            warm.cross_program_hits() > 0,
            "expected cross-program cache hits, got stats {:?}",
            warm.engine
        );
        println!(
            "warm revalidation: {} verdicts, all served across programs from the session cache",
            warm.engine.cache_hits
        );
    }

    // With DISCHARGE_CACHE set, the session cache outlives the process:
    // report the disk-level numbers (and flush explicitly so an I/O
    // error fails the run instead of being swallowed by the drop path).
    if std::env::var_os("DISCHARGE_CACHE").is_some() {
        let persisted = verifier.persist()?;
        let stats = verifier.stats();
        // No hard assert on loaded ⇒ disk hits here: a store restored
        // from an older revision can be fingerprint-compatible yet keyed
        // by goals a VC-generation change renamed, which is a legitimate
        // cold start. CI's warm leg — same binary, same store — gates on
        // this line instead (see the cache-persistence job).
        println!(
            "persistent cache: loaded={} disk_hits={} persisted={persisted}",
            stats.loaded, stats.disk_hits
        );
    }

    if trace_path.is_some() {
        // A cold run must have produced at least one real solve span; a
        // store-warmed run legitimately answers everything from cache.
        let expect_solves = report.engine.cache_misses > 0;
        report_trace(expect_solves, slow_n)?;
    }
    Ok(())
}

/// Flushes the session's telemetry to its trace file, validates the
/// trace with the crate's own JSON parser (the file is Chrome
/// trace-event JSON restricted to integers and strings for exactly this
/// reason), prints the machine-readable `trace:` line, and — with
/// `--slow N` — the N slowest solve spans.
fn report_trace(expect_solves: bool, slow_n: usize) -> Result<(), Box<dyn std::error::Error>> {
    use relaxed_programs::core::cache::{parse_json, Json};
    use relaxed_programs::core::telemetry;

    let path = telemetry::flush()?.ok_or("--trace was given but no trace file is configured")?;
    let text = std::fs::read_to_string(&path)?;
    let record = parse_json(&text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let fields = record
        .as_object()
        .map_err(|e| format!("trace is not a JSON object: {e}"))?;
    let events = fields
        .iter()
        .find(|(key, _)| key == "traceEvents")
        .ok_or("trace has no traceEvents array")?
        .1
        .as_array()
        .map_err(|e| format!("traceEvents is not an array: {e}"))?;
    let field = |item: &[(String, Json)], key: &str| -> Option<String> {
        item.iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                Json::Str(s) => Some(s.clone()),
                _ => None,
            })
    };
    let mut spans = 0usize;
    let mut solve_spans = 0usize;
    for item in events {
        let item = item
            .as_object()
            .map_err(|e| format!("trace event is not an object: {e}"))?;
        if field(item, "ph").as_deref() != Some("X") {
            continue; // metadata records (process/thread names)
        }
        spans += 1;
        if field(item, "name").as_deref() == Some("solve") {
            solve_spans += 1;
        }
    }
    if expect_solves {
        assert!(
            solve_spans >= 1,
            "a cold traced run must record at least one solve span"
        );
    }
    // The machine-readable line the CI trace-smoke job gates on.
    println!(
        "trace: path={} events={spans} solve_spans={solve_spans}",
        path.display()
    );

    if slow_n > 0 {
        let mut solves: Vec<telemetry::Event> = telemetry::snapshot()
            .into_iter()
            .filter(|event| event.name == "solve")
            .collect();
        solves.sort_by_key(|span| std::cmp::Reverse(span.dur_us));
        println!("slowest goals:");
        println!("{:>12}  {:>4}  goal", "solve_ms", "lane");
        for event in solves.iter().take(slow_n) {
            let goal = event
                .args
                .iter()
                .find_map(|(key, value)| match (key.as_ref(), value) {
                    ("goal", telemetry::ArgValue::Str(s)) => Some(s.as_str()),
                    _ => None,
                })
                .unwrap_or("<unlabelled>");
            println!(
                "{:>12.3}  {:>4}  {goal}",
                event.dur_us as f64 / 1e3,
                event.tid
            );
        }
    }
    Ok(())
}

/// The sharded mode (`--sharded` / `DISCHARGE_SHARDS`): verify the corpus
/// in-process first (the baseline, which also seeds the persistent store
/// when `DISCHARGE_CACHE` is set), then across worker processes, and
/// assert the two reports verdict-identical — the CI equivalence gate.
fn sharded_main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = casestudies::corpus();
    let shards = match relaxed_programs::Config::from_env().0.corpus {
        CorpusPolicy::Sharded { shards } => shards,
        _ => 2,
    };

    // In-process baseline under the same budgets and cache policy.
    let baseline_session = Verifier::builder()
        .env()
        .corpus(CorpusPolicy::InProcess)
        .build();
    let baseline = baseline_session.check_corpus_named(&corpus);
    let persistent = baseline_session.engine().cache_path().is_some();
    if persistent {
        // Flush before the workers start, so every sharded verdict can be
        // answered from the store — the deterministic cross-process
        // disk-hit guarantee asserted below.
        baseline_session.persist()?;
    }

    // Replay off for the sharded session: with the baseline's depmap
    // sidecar on disk the whole corpus would replay in-process before
    // any job shipped, and this gate exists to exercise cross-process
    // verification (`--edit-reverify` covers the replay path).
    let sharded_session = Verifier::builder()
        .env()
        .shards(shards)
        .depmap(false)
        .build();
    let report = sharded_session.check_corpus_named(&corpus);
    println!("{report}");
    println!("{}", report.to_json());
    println!(
        "sharded: {} programs across {shards} worker processes in {}ms \
         (in-process baseline {}ms); {} disk hits, {} solver runs",
        report.len(),
        report.elapsed_ms,
        baseline.elapsed_ms,
        report.engine.disk_hits,
        report.engine.cache_misses
    );

    // The equivalence gate: one shared verdict-for-verdict comparison
    // (CorpusReport::verdicts_match), also used by the shard tests and
    // paper_report §E10.
    report
        .verdicts_match(&baseline)
        .expect("sharded report must be verdict-identical to the in-process baseline");
    println!("sharded report is verdict-identical to the in-process baseline");

    if persistent {
        assert_eq!(
            report.engine.cache_misses, 0,
            "with a pre-seeded store the sharded run must not re-solve"
        );
        assert!(
            report.engine.disk_hits >= 1,
            "workers must reuse the baseline's verdicts across processes: {:?}",
            report.engine
        );
        println!(
            "persistent cache: disk_hits={} (cross-process, via the shared store)",
            report.engine.disk_hits
        );
    }
    Ok(())
}

/// The service mode (`--service <addr>` / `RELAXED_SERVICE`): verify the
/// corpus in-process first (the baseline, which also seeds the persistent
/// store when `DISCHARGE_CACHE` is set), then submit it to the running
/// `relaxed-serviced` daemon from two concurrent client threads, and
/// assert every client report verdict-identical to the baseline — the CI
/// `service-corpus` equivalence gate.
fn service_main(addr: String) -> Result<(), Box<dyn std::error::Error>> {
    const CLIENTS: usize = 2;
    let corpus = casestudies::corpus();

    // In-process baseline under the same budgets and cache policy.
    let baseline_session = Verifier::builder()
        .env()
        .corpus(CorpusPolicy::InProcess)
        .build();
    let baseline = baseline_session.check_corpus_named(&corpus);
    let persistent = baseline_session.engine().cache_path().is_some();
    if persistent {
        // Flush before the clients submit, so the daemon's fleet can
        // answer every verdict from the shared store — the deterministic
        // cross-client disk-hit guarantee asserted below.
        baseline_session.persist()?;
    }

    let started = std::time::Instant::now();
    let reports: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = addr.clone();
                let corpus = &corpus;
                scope.spawn(move || {
                    // Replay off: a client that replays the baseline's
                    // depmap locally never contacts the daemon, and this
                    // gate exists to exercise the service protocol.
                    let session = Verifier::builder()
                        .env()
                        .service(addr)
                        .depmap(false)
                        .build();
                    session.check_corpus_named(corpus)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("service client thread"))
            .collect()
    });
    let elapsed = started.elapsed();

    let report = &reports[0];
    println!("{report}");
    println!("{}", report.to_json());
    let requests = (CLIENTS * corpus.len()) as f64;
    println!(
        "service: {} programs x {CLIENTS} concurrent clients against {addr} \
         (fleet={}) in {elapsed:.1?} ({:.1} requests/sec; in-process baseline {}ms)",
        corpus.len(),
        report.engine.workers,
        requests / elapsed.as_secs_f64(),
        baseline.elapsed_ms,
    );

    // The equivalence gate: every concurrent client must agree with the
    // in-process baseline, verdict for verdict.
    for (client, report) in reports.iter().enumerate() {
        report.verdicts_match(&baseline).unwrap_or_else(|e| {
            panic!("client {client} must be verdict-identical to the in-process baseline: {e}")
        });
    }
    println!("all {CLIENTS} client reports are verdict-identical to the in-process baseline");

    let disk_hits: u64 = reports.iter().map(|r| r.engine.disk_hits).sum();
    let solver_runs: u64 = reports.iter().map(|r| r.engine.cache_misses).sum();
    if persistent {
        assert_eq!(
            solver_runs, 0,
            "with a pre-seeded store the service fleet must not re-solve"
        );
        assert!(
            disk_hits >= 1,
            "the fleet must serve the baseline's verdicts across clients: {:?}",
            report.engine
        );
    }
    // The machine-readable line the CI service-corpus job gates on.
    println!("service: clients={CLIENTS} disk_hits={disk_hits} solver_runs={solver_runs}");
    Ok(())
}

/// The edit→re-verify mode (`--edit-reverify`): the CI gate for the goal
/// dependency map. Always runs against its own scratch store (ignoring
/// `DISCHARGE_CACHE`) so reruns start from a known-cold state.
fn edit_reverify_main() -> Result<(), Box<dyn std::error::Error>> {
    use relaxed_programs::core::depmap::{dirty_goals, goal_deps, program_hash, ProgramDeps};
    use relaxed_programs::core::vcgen::Vc;
    use relaxed_programs::core::EngineStats;
    use relaxed_programs::lang::{parse_formula, Program};
    use relaxed_programs::{CachePolicy, CorpusReport, Spec, Stage};

    // A scratch persistent store (the depmap is its sidecar). Recreated
    // from scratch on every run: the assertions below count the solver
    // work of one specific edit, so a store warmed by a *previous*
    // edit-reverify run would make them vacuous.
    let dir = std::env::temp_dir().join(format!("edit-reverify-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;
    let cache_path = dir.join("corpus.verdicts.jsonl");
    let session = |depmap: bool| {
        Verifier::builder()
            .env()
            .corpus(CorpusPolicy::InProcess)
            .cache(CachePolicy::Persistent {
                path: cache_path.clone(),
            })
            .depmap(depmap)
            .build()
    };

    // Cold pass: prove the whole corpus, persist verdicts + depmap.
    let corpus = casestudies::corpus();
    let cold_session = session(true);
    let cold = cold_session.check_corpus_named(&corpus);
    cold_session.persist()?;
    println!(
        "cold pass: {} programs, {} solver runs in {}ms",
        cold.len(),
        cold.engine.cache_misses,
        cold.elapsed_ms
    );

    // The edit: strengthen swish's precondition. Every goal whose
    // formula embeds the precondition text changes key; everything else
    // — including the five other programs — is textually untouched.
    const EDITED: &str = "swish";
    const SIBLING: &str = "water";
    let mut edited = corpus.clone();
    let slot = edited
        .iter()
        .position(|(name, _, _)| *name == EDITED)
        .expect("edited program is in the corpus");
    edited[slot].2.pre = parse_formula("max_r >= 1 && N >= 0").expect("edited pre parses");

    // Expected re-proof count, from the dependency map's own arithmetic:
    // goals of the edited revision whose keys the stored revision does
    // not already hold (everything else replays from the verdict cache).
    let stages: Vec<Stage> = [Stage::Original, Stage::Intermediate, Stage::Relaxed]
        .into_iter()
        .filter(|stage| cold_session.config().stages.contains(*stage))
        .collect();
    let staged = |program: &Program, spec: &Spec| -> Vec<(Stage, Vec<Vc>)> {
        stages
            .iter()
            .map(|&stage| {
                let vcs = cold_session
                    .stage(stage)
                    .vcs(program, spec)
                    .expect("case study generates VCs");
                (stage, vcs)
            })
            .collect()
    };
    let old = ProgramDeps {
        hash: program_hash(&corpus[slot].1, &corpus[slot].2),
        goals: goal_deps(&staged(&corpus[slot].1, &corpus[slot].2)),
    };
    let fresh = goal_deps(&staged(&edited[slot].1, &edited[slot].2));
    let dirty = dirty_goals(&old, &fresh).len() as u64;
    assert!(dirty > 0, "the spec edit must dirty at least one goal");

    // Re-verify the edited corpus in a fresh session — a new process in
    // CI terms: everything it knows comes from the store and its
    // sidecar.
    let reverify_session = session(true);
    let started = std::time::Instant::now();
    let report = reverify_session.check_corpus_named(&edited);
    let reverify_ms = started.elapsed().as_secs_f64() * 1e3;
    reverify_session.persist()?;

    let entry_stats = |report: &CorpusReport, name: &str| -> EngineStats {
        report
            .entries
            .iter()
            .find(|entry| entry.name == name)
            .and_then(|entry| entry.outcome.as_ref().ok())
            .unwrap_or_else(|| panic!("{name} must have a staged report"))
            .engine
    };
    let edited_stats = entry_stats(&report, EDITED);
    assert_eq!(
        edited_stats.cache_misses, dirty,
        "solver runs for {EDITED} must equal the goals the edit dirtied"
    );
    let sibling_stats = entry_stats(&report, SIBLING);
    assert_eq!(
        sibling_stats.cache_misses, 0,
        "untouched sibling {SIBLING} must replay without solver work"
    );
    assert_eq!(
        report.engine.cache_misses, dirty,
        "corpus-wide solver work must be exactly the dirtied goals"
    );

    // The equivalence gate: the incremental report must agree verdict
    // for verdict with a full in-process run that regenerates and checks
    // every goal (replay off; the warm store still answers verdicts).
    let full_session = session(false);
    let started = std::time::Instant::now();
    let full = full_session.check_corpus_named(&edited);
    let full_warm_ms = started.elapsed().as_secs_f64() * 1e3;
    report
        .verdicts_match(&full)
        .expect("incremental report must be verdict-identical to the full in-process run");
    println!("incremental report is verdict-identical to the full in-process run");

    // The machine-readable line the CI edit-reverify job gates on.
    println!(
        "edit-reverify: edited={EDITED} dirty_goals={dirty} of {} solver_runs={} \
         sibling={SIBLING} sibling_solver_runs={} reverify_ms={reverify_ms:.1} \
         full_warm_ms={full_warm_ms:.1}",
        fresh.len(),
        edited_stats.cache_misses,
        sibling_stats.cache_misses
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
