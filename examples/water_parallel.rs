//! E2 — the paper's §5.2 case study: the Water computation after
//! synchronization elimination.
//!
//! Statically verifies that the unconstrained relaxation of the shared
//! array RS does not interfere with the developer's array-bounds
//! assumption, then runs molecular-dynamics-shaped workloads under random
//! "schedules" and confirms no relaxed execution violates it.
//!
//! Run with: `cargo run --example water_parallel`

use relaxed_programs::casestudies;
use relaxed_programs::interp::oracle::{IdentityOracle, RandomOracle};
use relaxed_programs::interp::{run_original, run_relaxed, Outcome};
use relaxed_programs::lang::State;
use relaxed_programs::Verifier;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (program, spec) = casestudies::water();
    let started = std::time::Instant::now();
    let report = Verifier::new().check(&program, &spec)?;
    println!(
        "§5.2 Water synchronization elimination — verified: {} ({} VCs, {:.1?})",
        report.relaxed_progress(),
        report.total_vcs(),
        started.elapsed(),
    );
    assert!(report.relaxed_progress());
    println!(
        "paper proof effort: 310 Coq lines | ours: 2 invariants + 1 diverge contract → {} VCs\n",
        report.total_vcs()
    );

    println!("{:>6} {:>14} {:>14}", "N", "original", "relaxed(race)");
    for n in [4i64, 16, 64, 256] {
        // Molecular-dynamics-shaped synthetic workload: RS holds pairwise
        // distances-squared; FF receives force contributions.
        let rs: Vec<i64> = (0..n).map(|i| (i * 37) % 100).collect();
        let mut sigma = State::from_ints([("N", n), ("K", 0), ("gCUT2", 50), ("len_FF", n)]);
        sigma.set("RS", rs);
        sigma.set("FF", vec![0; n as usize]);
        let fuel = 10_000_000;
        let original = run_original(program.body(), sigma.clone(), &mut IdentityOracle, fuel);
        let mut scheduler = RandomOracle::new(0xC0FFEE ^ n as u64, 0, 99);
        let relaxed = run_relaxed(program.body(), sigma, &mut scheduler, fuel);
        // Relaxed Progress (Theorem 8): neither run errs; in particular the
        // bounds assumption survives the race.
        assert!(
            matches!(original, Outcome::Terminated { .. }),
            "original must terminate cleanly: {original}"
        );
        assert!(
            matches!(relaxed, Outcome::Terminated { .. }),
            "relaxed must terminate cleanly: {relaxed}"
        );
        println!("{n:>6} {:>14} {:>14}", "ok", "ok (no ba/wr)");
    }
    println!("\nno execution violated `assume K < len_FF` — Corollary 9 in action");
    Ok(())
}
