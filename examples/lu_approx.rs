//! E3 — the paper's §5.3 case study: the SciMark2 LU pivot search under
//! approximate memory.
//!
//! Statically verifies the Lipschitz accuracy property
//! `|max<o> − max<r>| ≤ e`, then measures the actual pivot error across
//! random matrices and error bounds.
//!
//! Run with: `cargo run --example lu_approx`

use relaxed_programs::casestudies;
use relaxed_programs::interp::oracle::{IdentityOracle, RandomOracle};
use relaxed_programs::interp::{check_compat, run_original, run_relaxed};
use relaxed_programs::lang::{State, Var};
use relaxed_programs::Verifier;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (program, spec) = casestudies::lu();
    let started = std::time::Instant::now();
    let report = Verifier::new().check(&program, &spec)?;
    println!(
        "§5.3 LU approximate-memory pivot — verified: {} ({} VCs, {:.1?})",
        report.relaxed_progress(),
        report.total_vcs(),
        started.elapsed(),
    );
    assert!(report.relaxed_progress());
    println!(
        "paper proof effort: 315 Coq lines | ours: 2 invariants → {} VCs\n",
        report.total_vcs()
    );

    println!(
        "{:>6} {:>4} {:>8} {:>8} {:>10}",
        "N", "e", "max<o>", "max<r>", "|Δ| ≤ e?"
    );
    for n in [4i64, 16, 64, 128] {
        for e in [0i64, 1, 2, 8] {
            // Random matrix column (the pivot scan touches one column).
            let col: Vec<i64> = (0..n).map(|i| ((i * 73 + 11) % 200) - 100).collect();
            let mut sigma = State::from_ints([("N", n), ("e", e), ("i", 0)]);
            sigma.set("col", col);
            let fuel = 10_000_000;
            let original = run_original(program.body(), sigma.clone(), &mut IdentityOracle, fuel);
            let mut memory = RandomOracle::new((n * 1000 + e) as u64, -200, 200);
            let relaxed = run_relaxed(program.body(), sigma, &mut memory, fuel);
            let max_o = original.state().unwrap().get_int(&Var::new("max")).unwrap();
            let max_r = relaxed.state().unwrap().get_int(&Var::new("max")).unwrap();
            check_compat(
                &program.gamma(),
                original.observations().unwrap(),
                relaxed.observations().unwrap(),
            )?;
            let delta = (max_o - max_r).abs();
            assert!(delta <= e, "Lipschitz bound violated: {delta} > {e}");
            println!(
                "{n:>6} {e:>4} {max_o:>8} {max_r:>8} {:>10}",
                format!("{delta} ✓")
            );
        }
    }
    Ok(())
}
