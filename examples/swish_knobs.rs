//! E1 — the paper's §5.1 case study: Swish++ dynamic knobs.
//!
//! Statically verifies the relate property through the diverge rule, then
//! sweeps result counts, showing the relaxed server always presents either
//! all original results (< 10) or at least the top 10.
//!
//! Run with: `cargo run --example swish_knobs`

use relaxed_programs::casestudies;
use relaxed_programs::interp::oracle::{ExtremalOracle, IdentityOracle};
use relaxed_programs::interp::{check_compat, run_original, run_relaxed};
use relaxed_programs::lang::{State, Var};
use relaxed_programs::Verifier;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (program, spec) = casestudies::swish();
    let started = std::time::Instant::now();
    let report = Verifier::new().check(&program, &spec)?;
    println!(
        "§5.1 Swish++ dynamic knobs — verified: {} ({} VCs, {:.1?})",
        report.relaxed_progress(),
        report.total_vcs(),
        started.elapsed(),
    );
    assert!(report.relaxed_progress());

    // The paper reports 330 lines of Coq proof script; our analogue:
    println!(
        "paper proof effort: 330 Coq lines | ours: 1 invariant + 1 diverge contract → {} VCs\n",
        report.total_vcs()
    );

    println!(
        "{:>8} {:>8} {:>10} {:>10}  property",
        "max_r", "N", "num_r<o>", "num_r<r>"
    );
    for (max_r, n) in [(3, 100), (10, 4), (25, 100), (100, 8), (1000, 1000)] {
        let sigma = State::from_ints([("max_r", max_r), ("N", n), ("num_r", 0)]);
        let fuel = 1_000_000;
        let original = run_original(program.body(), sigma.clone(), &mut IdentityOracle, fuel);
        // The adversarial schedule drops the knob as low as permitted.
        let mut adversary = ExtremalOracle::minimizing();
        let relaxed = run_relaxed(program.body(), sigma, &mut adversary, fuel);
        let num_o = original
            .state()
            .unwrap()
            .get_int(&Var::new("num_r"))
            .unwrap();
        let num_r = relaxed
            .state()
            .unwrap()
            .get_int(&Var::new("num_r"))
            .unwrap();
        check_compat(
            &program.gamma(),
            original.observations().unwrap(),
            relaxed.observations().unwrap(),
        )?;
        let property = if num_o < 10 {
            format!("all {num_o} results kept")
        } else {
            format!("top {num_r} ≥ 10 kept")
        };
        println!("{max_r:>8} {n:>8} {num_o:>10} {num_r:>10}  {property} ✓");
    }
    Ok(())
}
