//! Quickstart: author a relaxed program, verify its acceptability
//! property through a `Verifier` session, then execute both semantics
//! and check observational compatibility dynamically.
//!
//! Run with: `cargo run --example quickstart`

use relaxed_programs::interp::oracle::{ExtremalOracle, IdentityOracle, RandomOracle};
use relaxed_programs::interp::{check_compat, run_original, run_relaxed};
use relaxed_programs::lang::{parse_program, parse_rel_formula, Formula, RelFormula, State, Var};
use relaxed_programs::{Spec, Stage, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A bounded-error relaxation with a relate accuracy property: the
    // relaxed x may drift up to 2 above the original, never below.
    let program = parse_program(
        "x0 = x;
         relax (x) st (x0 <= x && x <= x0 + 2);
         y = x + 10;
         relate drift : x<o> <= x<r> && x<r> - x<o> <= 2
                        && y<o> <= y<r> && y<r> - y<o> <= 2;",
    )?;

    // --- static verification (the paper's ⊢o then ⊢r pipeline) ---
    // A session with typed configuration: builder > env > default. The
    // `.env()` layer is the explicit opt-in for `DISCHARGE_*` overrides.
    let verifier = Verifier::builder().env().build();
    for warning in verifier.env_warnings() {
        eprintln!("quickstart: {warning}");
    }
    let spec = Spec {
        pre: Formula::True,
        post: Formula::True,
        rel_pre: parse_rel_formula("x<o> == x<r>")?,
        rel_post: RelFormula::True,
    };
    let report = verifier.check(&program, &spec)?;
    println!("⊢o: {}", report.original);
    println!("⊢r: {}", report.relaxed);
    println!(
        "discharge engine: {} unique goals, {} cache hits / {} solver runs",
        report.engine.unique_goals, report.engine.cache_hits, report.engine.cache_misses
    );
    println!(
        "Relaxed Progress (Theorem 8): {}\n",
        report.relaxed_progress()
    );
    assert!(report.relaxed_progress());

    // The same session answers per-stage queries from its warm cache:
    let original_only = verifier.stage(Stage::Original).check(&program, &spec)?;
    assert!(original_only.verified());
    assert_eq!(original_only.engine.cache_misses, 0, "fully warm");

    // --- dynamic exploration ---
    let sigma = State::from_ints([("x", 5)]);
    let fuel = 10_000;
    let original = run_original(program.body(), sigma.clone(), &mut IdentityOracle, fuel);
    println!("original run: {original}");

    for (name, oracle) in [
        (
            "identity",
            &mut IdentityOracle as &mut dyn relaxed_programs::interp::Oracle,
        ),
        ("maximizing", &mut ExtremalOracle::maximizing()),
        ("random", &mut RandomOracle::new(7, -100, 100)),
    ] {
        let relaxed = run_relaxed(program.body(), sigma.clone(), oracle, fuel);
        let x = relaxed.state().unwrap().get_int(&Var::new("x")).unwrap();
        // Theorem 6 dynamically: the observation lists are compatible.
        check_compat(
            &program.gamma(),
            original.observations().unwrap(),
            relaxed.observations().unwrap(),
        )?;
        println!("relaxed run ({name}): x = {x} — relate holds ✓");
    }
    Ok(())
}
